// Package wire is wispd's binary serving protocol: length-prefixed,
// varint-framed request/response records multiplexed over one TCP
// connection.  It exists because HTTP+JSON framing (base64 payload
// expansion, header parsing, per-request connection bookkeeping) became a
// first-order cost once the crypto hot paths went allocation-free — and
// because a routing tier needs a compact load figure piggybacked on every
// response, which HTTP has no cheap place for.
//
// # Framing
//
// A connection opens with a 4-byte preamble from the client — 'W' 'S' 'P'
// then a version byte — and then carries frames in both directions:
//
//	frame  := uvarint(len(header)) header body
//	header := type-byte uvarint(seq) type-specific-fields
//
// The body length is always derivable from header fields (a request's
// payload length, a response's digest+result lengths), so the header —
// bounded by MaxHeader — parses completely before any body byte is read.
// That ordering is the envelope-first admission contract: the server runs
// QoS pre-admission on the parsed header and *discards* a refused
// request's payload from the socket instead of buffering it, exactly as
// the HTTP front end refuses a throttled client's body before base64
// decoding it.
//
// `seq` is a connection-local request identifier chosen by the client;
// responses echo it, so many requests can be in flight on one connection
// and complete out of order.
//
// # Request/response headers
//
//	request  := flags op uvarint(attempt) uvarint(recordSize)
//	            uvarint(deadlineUS) str(id) str(clientID) str(key)
//	            uvarint(payloadLen)            body = payload
//	response := status flags op zigzag(shard) uvarint(records)
//	            uvarint(batch) uvarint(queueUS) uvarint(serviceUS)
//	            f64(estBase) f64(estOpt) uvarint(loadUS) reason
//	            str(error) str(id) uvarint(digestLen) uvarint(resultLen)
//	                                           body = digest result
//
// where str is uvarint(len) bytes, f64 is 8 little-endian IEEE-754 bytes,
// zigzag is a signed varint and reason is a one-byte code (known shed
// reasons decode to interned constants without allocating; code 255 is
// followed by a str for forward compatibility).  loadUS piggybacks the
// answering node's total backlog-cost estimate so a routing tier can feed
// per-node cost EWMAs from ordinary traffic.
//
// Stats (type 3/4) and ping/pong (type 5/6) frames share the envelope;
// pong also carries uvarint(loadUS), making a ping both a health probe
// and a load probe.
//
// # Session replication frames
//
// Replicate (type 7) pushes a batch of session secrets to a peer's
// replica store, fire and forget — the peer sends nothing back, so a
// push can never stall the sender:
//
//	replicate := uvarint(count) count×(uvarint(idLen) uvarint(masterLen))
//	             body = id1 master1 id2 master2 ...
//
// Fetch (type 8) asks a peer for one session secret by ID; FetchResp
// (type 9) answers it:
//
//	fetch     := str(sessionID)                (no body)
//	fetchresp := found-byte uvarint(masterLen) body = master
//
// A handler that does not implement ReplicaHandler discards Replicate
// batches and answers Fetch with not-found: replication frames degrade
// to a session-cache miss, never a poisoned connection.
//
// Encoding and header parsing are allocation-free in steady state: the
// Encoder reuses its scratch buffer, parsed byte fields alias the header
// buffer, and known enum values decode to package-level constants.  The
// only unavoidable costs are materializing a non-empty request ID
// (string(bytes)) and the first sighting of each ClientID (after which a
// bounded intern table serves it without allocating).
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"wisp/internal/serve"
)

// Preamble bytes: magic + protocol version, sent once per connection by
// the client before its first frame.
const (
	Magic0  = 'W'
	Magic1  = 'S'
	Magic2  = 'P'
	Version = 1
)

// Frame types.
const (
	FrameRequest   = 0x01
	FrameResponse  = 0x02
	FrameStats     = 0x03 // stats request (no extra fields)
	FrameStatsResp = 0x04 // uvarint(bodyLen); body = stats JSON
	FramePing      = 0x05
	FramePong      = 0x06 // uvarint(loadUS)
	FrameReplicate = 0x07 // session-secret push batch (fire and forget)
	FrameFetch     = 0x08 // session-secret pull request: str(id)
	FrameFetchResp = 0x09 // found byte + uvarint(masterLen); body = master
)

// Wire limits.  Header fields have their own bounds so a malformed length
// prefix can never commit the reader to a large buffer: the whole header
// is capped by MaxHeader, and the payload bound is serve.MaxPayload — the
// same admission limit the HTTP front end enforces.
const (
	MaxHeader    = 4096             // one frame header
	MaxID        = 128              // request/response ID string
	MaxKey       = 256              // explicit key material
	MaxError     = 512              // response error string (truncated)
	MaxReason    = 64               // unknown shed-reason string
	MaxStatsBody = 8 << 20          // stats JSON document
	MaxPayload   = serve.MaxPayload // request payload / response result
	MaxDigest    = 64               // response digest

	// Replication bounds: a session ID is 16 bytes and a master secret 48
	// in the miniature SSL, but the frames leave headroom for larger
	// suites.  The batch cap keeps a full batch's length table well inside
	// MaxHeader.
	MaxSessionID      = 64 // replicated session ID
	MaxMaster         = 96 // replicated master secret
	MaxReplicateBatch = 64 // entries per Replicate frame
)

// Request flag bits.
const (
	flagResume = 1 << 0
	flagHedge  = 1 << 1
)

// Response flag bits.
const (
	flagStolen  = 1 << 0
	flagResumed = 1 << 1
)

// opCode maps the proto's op names onto one wire byte.  0 is reserved for
// "no/unknown op" (error responses for undecodable requests carry it).
var opCode = map[serve.Op]byte{
	serve.OpSSL:        1,
	serve.OpHandshake:  2,
	serve.OpRecord:     3,
	serve.OpRSADecrypt: 4,
	serve.OpRSAEncrypt: 5,
	serve.OpAES:        6,
	serve.Op3DES:       7,
	serve.OpMD5:        8,
	serve.OpSHA1:       9,
	serve.OpHMACMD5:    10,
	serve.OpHMACSHA1:   11,
}

// opFromCode is the inverse table; index 0 and unknown codes yield "".
var opFromCode = func() [256]serve.Op {
	var t [256]serve.Op
	for op, c := range opCode {
		t[c] = op
	}
	return t
}()

// statusCode maps response statuses onto one wire byte.
var statusCode = map[serve.Status]byte{
	serve.StatusOK:      1,
	serve.StatusShed:    2,
	serve.StatusExpired: 3,
	serve.StatusError:   4,
}

var statusFromCode = func() [256]serve.Status {
	var t [256]serve.Status
	for st, c := range statusCode {
		t[c] = st
	}
	return t
}()

// Shed-reason codes.  Decoding a known code yields the interned constant,
// so the hot shed path allocates nothing; reasonOther carries the string.
const reasonOther = 255

var reasonCode = map[string]byte{
	"":                0,
	"queue-full":      1,
	"deadline":        2,
	"draining":        3,
	"throttle":        4,
	"backend-failure": 5,
}

var reasonFromCode = func() [256]string {
	var t [256]string
	for r, c := range reasonCode {
		t[c] = r
	}
	return t
}()

// Encoder builds frames.  It owns a scratch buffer reused across calls,
// so encoding is allocation-free once the scratch has grown to the
// workload's frame sizes.  Not safe for concurrent use; connections keep
// one per writer.
type Encoder struct {
	scratch []byte
}

// appendStr appends uvarint(len(b)) + b.
func appendStr(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// appendStrS is appendStr for string fields without a []byte conversion
// allocation.
func appendStrS(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64((v<<1)^(v>>63)))
}

// clampU encodes a possibly-negative counter as a non-negative uvarint.
func clampU(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// finish wraps the scratch header (and optional body slices) into dst as
// one frame: uvarint(len(hdr)) hdr body...
func (e *Encoder) finish(dst []byte, body ...[]byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(e.scratch)))
	dst = append(dst, e.scratch...)
	for _, b := range body {
		dst = append(dst, b...)
	}
	return dst
}

// Request appends one request frame for req with connection sequence seq.
// It validates the same size bounds the server enforces, so an oversized
// request fails here instead of poisoning the connection.
func (e *Encoder) Request(dst []byte, seq uint64, req *serve.Request) ([]byte, error) {
	code := opCode[req.Op]
	if code == 0 {
		return dst, fmt.Errorf("wire: unknown op %q", req.Op)
	}
	switch {
	case len(req.ID) > MaxID:
		return dst, fmt.Errorf("wire: request ID %d bytes exceeds limit %d", len(req.ID), MaxID)
	case len(req.ClientID) > serve.MaxClientID:
		return dst, fmt.Errorf("wire: client ID %d bytes exceeds limit %d", len(req.ClientID), serve.MaxClientID)
	case len(req.Key) > MaxKey:
		return dst, fmt.Errorf("wire: key %d bytes exceeds limit %d", len(req.Key), MaxKey)
	case len(req.Payload) > MaxPayload:
		return dst, fmt.Errorf("wire: payload %d bytes exceeds limit %d", len(req.Payload), MaxPayload)
	case req.Attempt < 0 || req.RecordSize < 0 || req.DeadlineUS < 0:
		return dst, fmt.Errorf("wire: negative attempt/record_size/deadline_us")
	}
	h := e.scratch[:0]
	h = append(h, FrameRequest)
	h = binary.AppendUvarint(h, seq)
	var flags byte
	if req.Resume {
		flags |= flagResume
	}
	if req.Hedge {
		flags |= flagHedge
	}
	h = append(h, flags, code)
	h = binary.AppendUvarint(h, uint64(req.Attempt))
	h = binary.AppendUvarint(h, uint64(req.RecordSize))
	h = binary.AppendUvarint(h, uint64(req.DeadlineUS))
	h = appendStrS(h, req.ID)
	h = appendStrS(h, req.ClientID)
	h = appendStr(h, req.Key)
	h = binary.AppendUvarint(h, uint64(len(req.Payload)))
	e.scratch = h
	return e.finish(dst, req.Payload), nil
}

// Response appends one response frame, stamping loadUS (the answering
// node's backlog-cost estimate) into the piggyback field.  Over-long
// error/reason/ID strings are truncated rather than rejected: the
// response must flow or the client hangs.
func (e *Encoder) Response(dst []byte, seq uint64, resp *serve.Response, loadUS int64) ([]byte, error) {
	st := statusCode[resp.Status]
	if st == 0 {
		return dst, fmt.Errorf("wire: unknown status %q", resp.Status)
	}
	if len(resp.Digest) > MaxDigest {
		return dst, fmt.Errorf("wire: digest %d bytes exceeds limit %d", len(resp.Digest), MaxDigest)
	}
	if len(resp.Result) > MaxPayload {
		return dst, fmt.Errorf("wire: result %d bytes exceeds limit %d", len(resp.Result), MaxPayload)
	}
	h := e.scratch[:0]
	h = append(h, FrameResponse)
	h = binary.AppendUvarint(h, seq)
	var flags byte
	if resp.Stolen {
		flags |= flagStolen
	}
	if resp.Resumed {
		flags |= flagResumed
	}
	h = append(h, st, flags, opCode[resp.Op])
	h = appendZigzag(h, int64(resp.Shard))
	h = binary.AppendUvarint(h, clampU(int64(resp.Records)))
	h = binary.AppendUvarint(h, clampU(int64(resp.Batch)))
	h = binary.AppendUvarint(h, clampU(resp.QueueUS))
	h = binary.AppendUvarint(h, clampU(resp.ServiceUS))
	h = binary.LittleEndian.AppendUint64(h, math.Float64bits(resp.EstBaseCycles))
	h = binary.LittleEndian.AppendUint64(h, math.Float64bits(resp.EstOptCycles))
	h = binary.AppendUvarint(h, clampU(loadUS))
	if code, ok := reasonCode[resp.ShedReason]; ok {
		h = append(h, code)
	} else {
		reason := resp.ShedReason
		if len(reason) > MaxReason {
			reason = reason[:MaxReason]
		}
		h = append(h, reasonOther)
		h = appendStrS(h, reason)
	}
	errStr := resp.Error
	if len(errStr) > MaxError {
		errStr = errStr[:MaxError]
	}
	h = appendStrS(h, errStr)
	id := resp.ID
	if len(id) > MaxID {
		id = id[:MaxID]
	}
	h = appendStrS(h, id)
	h = binary.AppendUvarint(h, uint64(len(resp.Digest)))
	h = binary.AppendUvarint(h, uint64(len(resp.Result)))
	e.scratch = h
	return e.finish(dst, resp.Digest, resp.Result), nil
}

// StatsReq appends a stats-request frame.
func (e *Encoder) StatsReq(dst []byte, seq uint64) []byte {
	e.scratch = binary.AppendUvarint(append(e.scratch[:0], FrameStats), seq)
	return e.finish(dst)
}

// StatsResp appends a stats-response frame carrying the JSON document.
func (e *Encoder) StatsResp(dst []byte, seq uint64, doc []byte) ([]byte, error) {
	if len(doc) > MaxStatsBody {
		return dst, fmt.Errorf("wire: stats document %d bytes exceeds limit %d", len(doc), MaxStatsBody)
	}
	h := binary.AppendUvarint(append(e.scratch[:0], FrameStatsResp), seq)
	h = binary.AppendUvarint(h, uint64(len(doc)))
	e.scratch = h
	return e.finish(dst, doc), nil
}

// Ping appends a ping frame.
func (e *Encoder) Ping(dst []byte, seq uint64) []byte {
	e.scratch = binary.AppendUvarint(append(e.scratch[:0], FramePing), seq)
	return e.finish(dst)
}

// Pong appends a pong frame answering seq with the node's load estimate.
func (e *Encoder) Pong(dst []byte, seq uint64, loadUS int64) []byte {
	h := binary.AppendUvarint(append(e.scratch[:0], FramePong), seq)
	h = binary.AppendUvarint(h, clampU(loadUS))
	e.scratch = h
	return e.finish(dst)
}

// ReplicaEntry is one session secret in a Replicate push batch.
type ReplicaEntry struct {
	ID     []byte
	Master []byte
}

// Replicate appends one session-secret push frame carrying the batch.
// The peer never answers it, so seq exists only for envelope uniformity.
func (e *Encoder) Replicate(dst []byte, seq uint64, entries []ReplicaEntry) ([]byte, error) {
	if len(entries) == 0 || len(entries) > MaxReplicateBatch {
		return dst, fmt.Errorf("wire: replicate batch of %d entries out of range [1,%d]", len(entries), MaxReplicateBatch)
	}
	h := binary.AppendUvarint(append(e.scratch[:0], FrameReplicate), seq)
	h = binary.AppendUvarint(h, uint64(len(entries)))
	for _, ent := range entries {
		if len(ent.ID) == 0 || len(ent.ID) > MaxSessionID {
			return dst, fmt.Errorf("wire: replicated session ID %d bytes out of range [1,%d]", len(ent.ID), MaxSessionID)
		}
		if len(ent.Master) == 0 || len(ent.Master) > MaxMaster {
			return dst, fmt.Errorf("wire: replicated master %d bytes out of range [1,%d]", len(ent.Master), MaxMaster)
		}
		h = binary.AppendUvarint(h, uint64(len(ent.ID)))
		h = binary.AppendUvarint(h, uint64(len(ent.Master)))
	}
	e.scratch = h
	dst = binary.AppendUvarint(dst, uint64(len(e.scratch)))
	dst = append(dst, e.scratch...)
	for _, ent := range entries {
		dst = append(dst, ent.ID...)
		dst = append(dst, ent.Master...)
	}
	return dst, nil
}

// Fetch appends one session-secret pull frame for id.
func (e *Encoder) Fetch(dst []byte, seq uint64, id []byte) ([]byte, error) {
	if len(id) == 0 || len(id) > MaxSessionID {
		return dst, fmt.Errorf("wire: fetch session ID %d bytes out of range [1,%d]", len(id), MaxSessionID)
	}
	h := binary.AppendUvarint(append(e.scratch[:0], FrameFetch), seq)
	h = appendStr(h, id)
	e.scratch = h
	return e.finish(dst), nil
}

// FetchResp appends the answer to a Fetch: found=false carries no body.
func (e *Encoder) FetchResp(dst []byte, seq uint64, master []byte, found bool) ([]byte, error) {
	if found && (len(master) == 0 || len(master) > MaxMaster) {
		return dst, fmt.Errorf("wire: fetched master %d bytes out of range [1,%d]", len(master), MaxMaster)
	}
	h := binary.AppendUvarint(append(e.scratch[:0], FrameFetchResp), seq)
	if !found {
		master = nil
	}
	var fb byte
	if found {
		fb = 1
	}
	h = append(h, fb)
	h = binary.AppendUvarint(h, uint64(len(master)))
	e.scratch = h
	return e.finish(dst, master), nil
}

// hdrReader walks a bounded header buffer; the first malformed field
// poisons it and every later read reports failure, so parse functions
// check err once at the end instead of after every field.
type hdrReader struct {
	b   []byte
	off int
	bad bool
}

func (r *hdrReader) fail() {
	r.bad = true
	r.off = len(r.b)
}

func (r *hdrReader) byte() byte {
	if r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *hdrReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *hdrReader) zigzag() int64 {
	u := r.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

func (r *hdrReader) f64() float64 {
	if r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// bytes returns a length-prefixed field as a subslice of the header
// buffer (no copy — valid only while the buffer is).  nil when empty.
func (r *hdrReader) bytes(max int) []byte {
	n := r.uvarint()
	if r.bad {
		return nil
	}
	if n > uint64(max) || r.off+int(n) > len(r.b) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	v := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return v
}

// count reads a uvarint bounded by max into an int.
func (r *hdrReader) count(max int) int {
	n := r.uvarint()
	if n > uint64(max) {
		r.fail()
		return 0
	}
	return int(n)
}

// ReqHead is one parsed request-frame header.  Key aliases the header
// buffer; copy it before the buffer is released.
type ReqHead struct {
	Seq        uint64
	Op         serve.Op
	Resume     bool
	Hedge      bool
	Attempt    int
	RecordSize int
	DeadlineUS int64
	ID         string
	ClientID   string
	Key        []byte
	PayloadLen int
}

// ClientKey maps the parsed ClientID to its QoS accounting identity,
// following the same empty-means-anonymous convention as
// serve.Envelope.ClientKey.
func (h *ReqHead) ClientKey() string {
	if h.ClientID == "" {
		return "-"
	}
	return h.ClientID
}

// Decoder parses frame headers.  It owns a bounded ClientID intern table:
// a serving connection sees the same few principals over and over, and
// interning makes their decode allocation-free after first sight.  Not
// safe for concurrent use; connections keep their own.
type Decoder struct {
	intern map[string]string
}

// maxIntern bounds the per-connection intern table so an ID-spray client
// cannot grow it without bound; overflow IDs just allocate per request.
const maxIntern = 4096

func (d *Decoder) internStr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := d.intern[string(b)]; ok { // alloc-free map probe
		return s
	}
	s := string(b)
	if d.intern == nil {
		d.intern = make(map[string]string, 64)
	}
	if len(d.intern) < maxIntern {
		d.intern[s] = s
	}
	return s
}

// ParseRequest parses a request-frame header (including the leading type
// byte, which the caller has already verified is FrameRequest) into h.
// An unknown op code parses successfully with Op "" — the server still
// knows the payload length, so it can discard the body and answer with
// the same validation error Submit gives any unknown op.
func (d *Decoder) ParseRequest(hdr []byte, h *ReqHead) error {
	r := hdrReader{b: hdr, off: 1}
	h.Seq = r.uvarint()
	flags := r.byte()
	h.Resume = flags&flagResume != 0
	h.Hedge = flags&flagHedge != 0
	h.Op = opFromCode[r.byte()]
	h.Attempt = r.count(math.MaxInt32)
	h.RecordSize = r.count(math.MaxInt32)
	h.DeadlineUS = int64(r.uvarint())
	id := r.bytes(MaxID)
	h.ID = ""
	if len(id) > 0 {
		h.ID = string(id)
	}
	h.ClientID = d.internStr(r.bytes(serve.MaxClientID))
	h.Key = r.bytes(MaxKey)
	h.PayloadLen = r.count(MaxPayload)
	if r.bad || r.off != len(hdr) || h.DeadlineUS < 0 {
		return fmt.Errorf("wire: malformed request header")
	}
	return nil
}

// ParseResponse parses a response-frame header into resp (reusing its
// Digest/Result capacity is the caller's business — the lengths are
// returned, the bytes follow as the frame body).  The error and ID
// strings allocate only when non-empty; known shed reasons intern.
func ParseResponse(hdr []byte, resp *serve.Response) (seq uint64, digestLen, resultLen int, err error) {
	r := hdrReader{b: hdr, off: 1}
	seq = r.uvarint()
	resp.Status = statusFromCode[r.byte()]
	flags := r.byte()
	resp.Stolen = flags&flagStolen != 0
	resp.Resumed = flags&flagResumed != 0
	resp.Op = opFromCode[r.byte()]
	resp.Shard = int(r.zigzag())
	resp.Records = r.count(math.MaxInt32)
	resp.Batch = r.count(math.MaxInt32)
	resp.QueueUS = int64(r.uvarint())
	resp.ServiceUS = int64(r.uvarint())
	resp.EstBaseCycles = r.f64()
	resp.EstOptCycles = r.f64()
	resp.LoadUS = int64(r.uvarint())
	code := r.byte()
	if code == reasonOther {
		resp.ShedReason = ""
		if b := r.bytes(MaxReason); len(b) > 0 {
			resp.ShedReason = string(b)
		}
	} else {
		resp.ShedReason = reasonFromCode[code]
	}
	resp.Error = ""
	if b := r.bytes(MaxError); len(b) > 0 {
		resp.Error = string(b)
	}
	resp.ID = ""
	if b := r.bytes(MaxID); len(b) > 0 {
		resp.ID = string(b)
	}
	digestLen = r.count(MaxDigest)
	resultLen = r.count(MaxPayload)
	if r.bad || r.off != len(hdr) || resp.Status == "" ||
		resp.QueueUS < 0 || resp.ServiceUS < 0 || resp.LoadUS < 0 {
		return 0, 0, 0, fmt.Errorf("wire: malformed response header")
	}
	return seq, digestLen, resultLen, nil
}

// parseSeq extracts the sequence number from any frame header.
func parseSeq(hdr []byte) (uint64, error) {
	r := hdrReader{b: hdr, off: 1}
	seq := r.uvarint()
	if r.bad {
		return 0, fmt.Errorf("wire: malformed frame header")
	}
	return seq, nil
}

// parseStatsResp returns the body length of a stats-response frame.
func parseStatsResp(hdr []byte) (seq uint64, bodyLen int, err error) {
	r := hdrReader{b: hdr, off: 1}
	seq = r.uvarint()
	bodyLen = r.count(MaxStatsBody)
	if r.bad || r.off != len(hdr) {
		return 0, 0, fmt.Errorf("wire: malformed stats response header")
	}
	return seq, bodyLen, nil
}

// parsePong returns the load estimate carried by a pong frame.
func parsePong(hdr []byte) (seq uint64, loadUS int64, err error) {
	r := hdrReader{b: hdr, off: 1}
	seq = r.uvarint()
	loadUS = int64(r.uvarint())
	if r.bad || r.off != len(hdr) {
		return 0, 0, fmt.Errorf("wire: malformed pong header")
	}
	return seq, loadUS, nil
}

// parseReplicate parses a Replicate header: the per-entry (idLen,
// masterLen) table appended to lens, plus the total body length the
// entries occupy.  Replication runs off the hot path, so the appended
// table may allocate.
func parseReplicate(hdr []byte, lens [][2]int) (out [][2]int, bodyLen int, err error) {
	r := hdrReader{b: hdr, off: 1}
	r.uvarint() // seq: fire-and-forget, never answered
	n := r.count(MaxReplicateBatch)
	if n == 0 {
		r.fail()
	}
	out = lens
	for i := 0; i < n && !r.bad; i++ {
		idLen := r.count(MaxSessionID)
		masterLen := r.count(MaxMaster)
		if idLen == 0 || masterLen == 0 {
			r.fail()
			break
		}
		out = append(out, [2]int{idLen, masterLen})
		bodyLen += idLen + masterLen
	}
	if r.bad || r.off != len(hdr) {
		return lens, 0, fmt.Errorf("wire: malformed replicate header")
	}
	return out, bodyLen, nil
}

// parseFetch returns the session ID a Fetch frame asks for; the ID
// aliases hdr.
func parseFetch(hdr []byte) (seq uint64, id []byte, err error) {
	r := hdrReader{b: hdr, off: 1}
	seq = r.uvarint()
	id = r.bytes(MaxSessionID)
	if r.bad || r.off != len(hdr) || len(id) == 0 {
		return 0, nil, fmt.Errorf("wire: malformed fetch header")
	}
	return seq, id, nil
}

// parseFetchResp returns the verdict and body length of a FetchResp.
func parseFetchResp(hdr []byte) (seq uint64, found bool, masterLen int, err error) {
	r := hdrReader{b: hdr, off: 1}
	seq = r.uvarint()
	fb := r.byte()
	masterLen = r.count(MaxMaster)
	if r.bad || r.off != len(hdr) || fb > 1 ||
		(fb == 1 && masterLen == 0) || (fb == 0 && masterLen != 0) {
		return 0, false, 0, fmt.Errorf("wire: malformed fetch response header")
	}
	return seq, fb == 1, masterLen, nil
}
