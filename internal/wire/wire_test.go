package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"wisp/internal/hashes"
	"wisp/internal/serve"
)

// splitFrame strips the uvarint length prefix from an encoded frame,
// returning the header and the trailing body bytes.
func splitFrame(t *testing.T, frame []byte) (hdr, body []byte) {
	t.Helper()
	n, used := binary.Uvarint(frame)
	if used <= 0 {
		t.Fatalf("bad frame length prefix")
	}
	if int(n) > len(frame)-used {
		t.Fatalf("frame length %d exceeds buffer %d", n, len(frame)-used)
	}
	return frame[used : used+int(n)], frame[used+int(n):]
}

func TestRequestHeaderRoundTrip(t *testing.T) {
	req := &serve.Request{
		ID:         "req-42",
		Op:         serve.OpSSL,
		Payload:    []byte("sixteen byte pay"),
		Key:        []byte{1, 2, 3, 4},
		RecordSize: 512,
		DeadlineUS: 250_000,
		Resume:     true,
		Attempt:    3,
		Hedge:      true,
		ClientID:   "tenant-a",
	}
	var enc Encoder
	frame, err := enc.Request(nil, 77, req)
	if err != nil {
		t.Fatal(err)
	}
	hdr, body := splitFrame(t, frame)
	if !bytes.Equal(body, req.Payload) {
		t.Errorf("body = %q, want payload", body)
	}

	var dec Decoder
	var h ReqHead
	if err := dec.ParseRequest(hdr, &h); err != nil {
		t.Fatal(err)
	}
	if h.Seq != 77 || h.ID != req.ID || h.Op != req.Op || h.ClientID != req.ClientID {
		t.Errorf("head = %+v", h)
	}
	if !h.Resume || !h.Hedge || h.Attempt != 3 || h.RecordSize != 512 || h.DeadlineUS != 250_000 {
		t.Errorf("head fields = %+v", h)
	}
	if !bytes.Equal(h.Key, req.Key) {
		t.Errorf("key = %v, want %v", h.Key, req.Key)
	}
	if h.PayloadLen != len(req.Payload) {
		t.Errorf("payload len = %d, want %d", h.PayloadLen, len(req.Payload))
	}
	if h.ClientKey() != "tenant-a" {
		t.Errorf("client key = %q", h.ClientKey())
	}
	if (&ReqHead{}).ClientKey() != "-" {
		t.Error("anonymous client key should be -")
	}
}

func TestResponseHeaderRoundTrip(t *testing.T) {
	resp := &serve.Response{
		ID:            "req-42",
		Op:            serve.OpRecord,
		Status:        serve.StatusOK,
		Digest:        []byte("0123456789abcdef"),
		Result:        []byte("result bytes"),
		Records:       9,
		Shard:         -1,
		Batch:         4,
		Stolen:        true,
		Resumed:       true,
		ShedReason:    "some-novel-reason",
		Error:         "partial failure",
		QueueUS:       123,
		ServiceUS:     4567,
		EstBaseCycles: 1.5e8,
		EstOptCycles:  2.5e6,
	}
	var enc Encoder
	frame, err := enc.Response(nil, 99, resp, 31_000)
	if err != nil {
		t.Fatal(err)
	}
	hdr, body := splitFrame(t, frame)

	var got serve.Response
	seq, dLen, rLen, err := ParseResponse(hdr, &got)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 99 || dLen != len(resp.Digest) || rLen != len(resp.Result) {
		t.Fatalf("seq/dLen/rLen = %d/%d/%d", seq, dLen, rLen)
	}
	if !bytes.Equal(body[:dLen], resp.Digest) || !bytes.Equal(body[dLen:], resp.Result) {
		t.Error("body digest/result mismatch")
	}
	if got.ID != resp.ID || got.Op != resp.Op || got.Status != resp.Status || got.Error != resp.Error {
		t.Errorf("got = %+v", got)
	}
	if got.Records != 9 || got.Shard != -1 || got.Batch != 4 || !got.Stolen || !got.Resumed {
		t.Errorf("got fields = %+v", got)
	}
	if got.ShedReason != resp.ShedReason {
		t.Errorf("reason = %q, want %q", got.ShedReason, resp.ShedReason)
	}
	if got.QueueUS != 123 || got.ServiceUS != 4567 {
		t.Errorf("timings = %d/%d", got.QueueUS, got.ServiceUS)
	}
	if got.EstBaseCycles != resp.EstBaseCycles || got.EstOptCycles != resp.EstOptCycles {
		t.Errorf("estimates = %v/%v", got.EstBaseCycles, got.EstOptCycles)
	}
	if got.LoadUS != 31_000 {
		t.Errorf("loadUS = %d, want 31000", got.LoadUS)
	}
}

// TestResponseKnownReasonsIntern checks every built-in shed reason decodes
// to the interned constant (one code byte on the wire, no string alloc).
func TestResponseKnownReasonsIntern(t *testing.T) {
	var enc Encoder
	for reason := range reasonCode {
		resp := &serve.Response{Status: serve.StatusShed, ShedReason: reason}
		frame, err := enc.Response(nil, 1, resp, 0)
		if err != nil {
			t.Fatal(err)
		}
		hdr, _ := splitFrame(t, frame)
		var got serve.Response
		if _, _, _, err := ParseResponse(hdr, &got); err != nil {
			t.Fatal(err)
		}
		if got.ShedReason != reason {
			t.Errorf("reason %q decoded as %q", reason, got.ShedReason)
		}
	}
}

// TestResponseTruncatesOversizeStrings: over-long error/reason/ID must be
// truncated, not rejected — a response that fails to encode hangs the
// client.
func TestResponseTruncatesOversizeStrings(t *testing.T) {
	resp := &serve.Response{
		Status:     serve.StatusError,
		ID:         strings.Repeat("i", MaxID+50),
		Error:      strings.Repeat("e", MaxError+100),
		ShedReason: strings.Repeat("r", MaxReason+10),
	}
	var enc Encoder
	frame, err := enc.Response(nil, 5, resp, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr, _ := splitFrame(t, frame)
	var got serve.Response
	if _, _, _, err := ParseResponse(hdr, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.ID) != MaxID || len(got.Error) != MaxError || len(got.ShedReason) != MaxReason {
		t.Errorf("lengths = %d/%d/%d", len(got.ID), len(got.Error), len(got.ShedReason))
	}
}

func TestEncodeRequestRejectsOversize(t *testing.T) {
	var enc Encoder
	cases := []*serve.Request{
		{Op: "no-such-op"},
		{Op: serve.OpMD5, ID: strings.Repeat("x", MaxID+1)},
		{Op: serve.OpMD5, ClientID: strings.Repeat("x", serve.MaxClientID+1)},
		{Op: serve.OpMD5, Key: make([]byte, MaxKey+1)},
		{Op: serve.OpMD5, Payload: make([]byte, MaxPayload+1)},
		{Op: serve.OpMD5, DeadlineUS: -1},
	}
	for i, req := range cases {
		if _, err := enc.Request(nil, 1, req); err == nil {
			t.Errorf("case %d: encoded, want error", i)
		}
	}
}

// TestParseRequestUnknownOp: an unrecognized op code parses successfully
// with Op "" — the payload length is still trustworthy, so the server can
// discard the body and answer the usual validation error.
func TestParseRequestUnknownOp(t *testing.T) {
	req := &serve.Request{Op: serve.OpMD5, Payload: []byte("abc")}
	var enc Encoder
	frame, err := enc.Request(nil, 3, req)
	if err != nil {
		t.Fatal(err)
	}
	hdr, _ := splitFrame(t, frame)
	// The op byte sits right after type, seq varint (1 byte here), flags.
	hdr[3] = 213 // unassigned code
	var dec Decoder
	var h ReqHead
	if err := dec.ParseRequest(hdr, &h); err != nil {
		t.Fatal(err)
	}
	if h.Op != "" {
		t.Errorf("op = %q, want empty", h.Op)
	}
	if h.PayloadLen != 3 {
		t.Errorf("payload len = %d, want 3", h.PayloadLen)
	}
}

// TestParseMalformedHeaders: every truncation of valid headers must fail
// cleanly (or parse to a prefix-consistent head), never panic or read out
// of bounds.
func TestParseMalformedHeaders(t *testing.T) {
	req := &serve.Request{
		ID: "id", Op: serve.OpSSL, ClientID: "c", Key: []byte("k"),
		Payload: []byte("pp"), RecordSize: 7, DeadlineUS: 9,
	}
	var enc Encoder
	reqFrame, err := enc.Request(nil, 1, req)
	if err != nil {
		t.Fatal(err)
	}
	reqHdr, _ := splitFrame(t, reqFrame)
	var dec Decoder
	var h ReqHead
	for n := 1; n < len(reqHdr); n++ {
		if err := dec.ParseRequest(reqHdr[:n], &h); err == nil {
			t.Errorf("request header truncated to %d bytes parsed", n)
		}
	}
	// Trailing garbage is also malformed: the header must parse exactly.
	if err := dec.ParseRequest(append(append([]byte{}, reqHdr...), 0), &h); err == nil {
		t.Error("request header with trailing byte parsed")
	}

	resp := &serve.Response{Status: serve.StatusOK, ID: "id", Error: "e", Digest: []byte("d")}
	respFrame, err := enc.Response(nil, 1, resp, 10)
	if err != nil {
		t.Fatal(err)
	}
	respHdr, _ := splitFrame(t, respFrame)
	var got serve.Response
	for n := 1; n < len(respHdr); n++ {
		if _, _, _, err := ParseResponse(respHdr[:n], &got); err == nil {
			t.Errorf("response header truncated to %d bytes parsed", n)
		}
	}
	// Status byte 0 decodes to "" and must be rejected.
	bad := append([]byte{}, respHdr...)
	bad[2] = 0
	if _, _, _, err := ParseResponse(bad, &got); err == nil {
		t.Error("response with zero status byte parsed")
	}
}

// TestDecoderInternBounded: the per-connection ClientID intern table stops
// growing at maxIntern; overflow IDs still decode correctly.
func TestDecoderInternBounded(t *testing.T) {
	var dec Decoder
	buf := make([]byte, 0, 32)
	for i := 0; i < maxIntern+10; i++ {
		buf = buf[:0]
		buf = append(buf, byte('a'+i%26), byte('0'+i%10), byte('0'+(i/10)%10), byte('0'+(i/100)%10), byte('0'+(i/1000)%10))
		got := dec.internStr(buf)
		if got != string(buf) {
			t.Fatalf("intern %q = %q", buf, got)
		}
	}
	if len(dec.intern) > maxIntern {
		t.Errorf("intern table grew to %d, cap %d", len(dec.intern), maxIntern)
	}
}

// dialRaw opens a plain TCP connection to the wire listener (no preamble,
// no framing — for protocol-violation tests).
func dialRaw(t *testing.T, addr string) (net.Conn, error) {
	t.Helper()
	return net.DialTimeout("tcp", addr, 5*time.Second)
}

// startWireGateway boots a real gateway behind a wire listener on a free
// port, both torn down with the test.
func startWireGateway(t *testing.T, cfg serve.Config) (*serve.Gateway, string) {
	t.Helper()
	gw, err := serve.NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(gw, ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := gw.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return gw, addr.String()
}

// TestServerServesEveryOp is the wire-protocol twin of the gateway's
// every-op test: each primitive round-trips over a real TCP connection and
// self-verifies its digest, and every response piggybacks a load figure.
func TestServerServesEveryOp(t *testing.T) {
	_, addr := startWireGateway(t, serve.Config{Shards: 2, Seed: 7})
	tr, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	payload := []byte("the quick brown fox jumps over the lazy dog")
	want := hashes.MD5Sum(payload)
	for _, op := range serve.AllOps {
		resp, err := tr.RoundTrip(&serve.Request{
			ID: "op-" + string(op), Op: op, Payload: payload,
			RecordSize: 16, ClientID: "wire-test",
		})
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if resp.Status != serve.StatusOK {
			t.Fatalf("%s: status %s (%s)", op, resp.Status, resp.Error)
		}
		if resp.ID != "op-"+string(op) {
			t.Errorf("%s: ID %q not echoed", op, resp.ID)
		}
		if !bytes.Equal(resp.Digest, want[:]) {
			t.Errorf("%s: digest mismatch", op)
		}
		if resp.LoadUS < 0 {
			t.Errorf("%s: negative piggybacked load %d", op, resp.LoadUS)
		}
	}
}

// TestServerMultiplexing floods one connection from concurrent goroutines
// and verifies every response pairs with its request (the digest proves
// the payload, the ID proves the demux).
func TestServerMultiplexing(t *testing.T) {
	_, addr := startWireGateway(t, serve.Config{Shards: 2, Seed: 3})
	tr, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	const workers, perWorker = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				payload := []byte(strings.Repeat("x", 1+(w*perWorker+i)%300))
				want := hashes.MD5Sum(payload)
				resp, err := tr.RoundTrip(&serve.Request{Op: serve.OpMD5, Payload: payload})
				if err != nil {
					errs <- err
					return
				}
				if resp.Status != serve.StatusOK || !bytes.Equal(resp.Digest, want[:]) {
					errs <- &serve.ValidationError{Field: "digest", Reason: "mismatch"}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestServeClientOverWire runs the full client stack (serve.Client with
// retry policy) over the wire transport, plus the stats and health frames.
func TestServeClientOverWire(t *testing.T) {
	_, addr := startWireGateway(t, serve.Config{Shards: 1, Seed: 5})
	tr, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	client := serve.NewClientWith(tr)
	client.SetRetryPolicy(serve.RetryPolicy{MaxAttempts: 2}, 1)
	defer tr.Close()

	payload := []byte("hello over the wire")
	want := hashes.MD5Sum(payload)
	resp, err := client.Do(&serve.Request{Op: serve.OpSSL, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != serve.StatusOK || !bytes.Equal(resp.Digest, want[:]) {
		t.Fatalf("status %s digest ok=%v", resp.Status, bytes.Equal(resp.Digest, want[:]))
	}

	if !client.Healthy() {
		t.Error("healthy = false on a live server")
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests == 0 || stats.OK == 0 {
		t.Errorf("stats requests/ok = %d/%d", stats.Requests, stats.OK)
	}
}

// TestServerShedsAtEnvelope drives a throttled client against a
// QoS-enabled gateway: after the bucket empties, requests shed with
// reason "throttle" *without* the payload being buffered — and the
// connection stays usable, proving the server discarded the refused
// payload from the stream correctly.
func TestServerShedsAtEnvelope(t *testing.T) {
	_, addr := startWireGateway(t, serve.Config{
		Shards: 1, Seed: 9,
		ClientRateUS: 1, ClientBurstUS: 1, // everything after the first µs throttles
	})
	tr, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	payload := bytes.Repeat([]byte("p"), 4096)
	var sheds int
	for i := 0; i < 6; i++ {
		resp, err := tr.RoundTrip(&serve.Request{
			ID: "shed-probe", Op: serve.OpSSL, Payload: payload, ClientID: "greedy",
		})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Status == serve.StatusShed {
			if resp.ShedReason != "throttle" {
				t.Errorf("request %d: shed reason %q", i, resp.ShedReason)
			}
			if resp.ID != "shed-probe" {
				t.Errorf("request %d: shed ID %q not echoed", i, resp.ID)
			}
			sheds++
		}
	}
	if sheds == 0 {
		t.Fatal("no envelope sheds under a 1µs/s budget")
	}
	// The connection survived every discard: an unthrottled client still
	// gets served on the same gateway.
	resp, err := tr.RoundTrip(&serve.Request{Op: serve.OpMD5, Payload: []byte("ok"), ClientID: "other"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != serve.StatusOK {
		t.Fatalf("post-shed request: %s (%s)", resp.Status, resp.Error)
	}
}

// TestServerRejectsBadPreamble: wrong magic or version closes the
// connection without serving.
func TestServerRejectsBadPreamble(t *testing.T) {
	gw, addr := startWireGateway(t, serve.Config{Shards: 1})
	before := gw.Stats().RejectedDecode
	for _, pre := range [][]byte{
		{'X', 'S', 'P', Version},
		{'W', 'S', 'P', 99},
	} {
		conn, err := dialRaw(t, addr)
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(pre)
		buf := make([]byte, 1)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Read(buf); err == nil {
			t.Error("server answered a bad preamble")
		}
		conn.Close()
	}
	if after := gw.Stats().RejectedDecode; after < before+2 {
		t.Errorf("rejected decodes %d -> %d, want +2", before, after)
	}
}

// TestTransportErrorsAfterClose: a closed transport fails fast, and a
// server teardown mid-connection fails in-flight callers instead of
// hanging them.
func TestTransportErrorsAfterClose(t *testing.T) {
	_, addr := startWireGateway(t, serve.Config{Shards: 1})
	tr, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	// Close drops the conn; the next send redials (the server is still
	// up), so the transport recovers — that's the redial contract.
	resp, err := tr.RoundTrip(&serve.Request{Op: serve.OpMD5, Payload: []byte("x")})
	if err != nil {
		t.Fatalf("redial after close: %v", err)
	}
	if resp.Status != serve.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	tr.Close()
}

// TestRequestDeadlineOverflowRejected: a deadline that decodes negative
// (uvarint > MaxInt64) must be refused as malformed.
func TestRequestDeadlineOverflowRejected(t *testing.T) {
	// Hand-build a header with deadline = 2^63 (negative as int64).
	h := []byte{FrameRequest}
	h = binary.AppendUvarint(h, 1)        // seq
	h = append(h, 0, opCode[serve.OpMD5]) // flags, op
	h = binary.AppendUvarint(h, 0)        // attempt
	h = binary.AppendUvarint(h, 0)        // record size
	h = binary.AppendUvarint(h, 1<<63)    // deadline: overflows int64
	h = binary.AppendUvarint(h, 0)        // id
	h = binary.AppendUvarint(h, 0)        // client id
	h = binary.AppendUvarint(h, 0)        // key
	h = binary.AppendUvarint(h, 0)        // payload len
	var dec Decoder
	var head ReqHead
	if err := dec.ParseRequest(h, &head); err == nil {
		t.Error("overflowing deadline parsed")
	}
}
