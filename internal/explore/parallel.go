package explore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"wisp/internal/pool"
)

// CacheStats reports the pricing-memo effectiveness of an Explorer.
type CacheStats struct {
	Hits   uint64 // estimates served from the memo
	Misses uint64 // estimates computed against the macro-models
}

// HitRate returns the fraction of pricings served from the memo.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

func (s CacheStats) String() string {
	return fmt.Sprintf("%d hits / %d misses (%.0f%% hit rate)", s.Hits, s.Misses, 100*s.HitRate())
}

// priceCache memoizes macro-model pricings keyed on the canonical trace
// fingerprint.  An Explorer's model set is fixed, so the fingerprint alone
// identifies the estimate; candidates that differ only in options that do
// not change the kernel profile (e.g. cache-reducer vs cache-powers on a
// single-decrypt workload) are priced once.
type priceCache struct {
	mu      sync.Mutex
	entries map[string]priceEntry
	hits    atomic.Uint64
	misses  atomic.Uint64
}

type priceEntry struct {
	cycles  float64
	missing []string
}

func newPriceCache() *priceCache {
	return &priceCache{entries: make(map[string]priceEntry)}
}

// price returns the memoized estimate for the fingerprint, computing it
// with compute on a miss.  Concurrent misses on the same key may both
// compute (the computation is pure), but only one entry is retained.
func (c *priceCache) price(fingerprint string, compute func() (float64, []string)) (float64, []string) {
	c.mu.Lock()
	e, ok := c.entries[fingerprint]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return e.cycles, e.missing
	}
	c.misses.Add(1)
	cycles, missing := compute()
	c.mu.Lock()
	c.entries[fingerprint] = priceEntry{cycles: cycles, missing: missing}
	c.mu.Unlock()
	return cycles, missing
}

func (c *priceCache) stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// CacheStats returns the explorer's pricing-memo hit/miss counters.
func (e *Explorer) CacheStats() CacheStats { return e.cache.stats() }

// ProgressFunc observes candidate completion during a parallel run.  It is
// invoked from worker goroutines and must be safe for concurrent use.
type ProgressFunc func(done, total int)

// EvaluateAllParallel prices every candidate across a bounded worker pool
// and returns results sorted best-first.  Aggregation is order-stable:
// each worker writes only its own result slot and the final stable sort
// runs over the original candidate order, so the ranked output is
// identical for any worker count (workers ≤ 0 selects GOMAXPROCS).  On
// failure the error of the lowest-index failing candidate is returned,
// matching the sequential run.
func (e *Explorer) EvaluateAllParallel(cfgs []Config, workers int, progress ProgressFunc) ([]Result, error) {
	out := make([]Result, len(cfgs))
	var done atomic.Int64
	err := pool.ForEach(len(cfgs), workers, func(i int) error {
		r, err := e.Evaluate(cfgs[i])
		if err != nil {
			return fmt.Errorf("explore: %v: %w", cfgs[i], err)
		}
		out[i] = r
		if progress != nil {
			progress(int(done.Add(1)), len(cfgs))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sortResults(out)
	return out, nil
}
