package explore

import (
	"strings"
	"sync/atomic"
	"testing"

	"wisp/internal/mpz"
	"wisp/internal/rsakey"
)

// TestParallelDeterminism is the order-stable aggregation guard: the full
// 450-candidate space explored sequentially and with an 8-worker pool must
// produce identical ranked output — configuration, estimate and rank, byte
// for byte.
func TestParallelDeterminism(t *testing.T) {
	space := Space()
	seq, err := newExplorer().EvaluateAllParallel(space, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := newExplorer().EvaluateAllParallel(space, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) || len(seq) != len(space) {
		t.Fatalf("length mismatch: seq %d, par %d, space %d", len(seq), len(par), len(space))
	}
	for i := range seq {
		if seq[i].Config != par[i].Config {
			t.Errorf("rank %d: sequential %v, parallel %v", i, seq[i].Config, par[i].Config)
		}
		if seq[i].EstCycles != par[i].EstCycles {
			t.Errorf("rank %d (%v): sequential %v cycles, parallel %v cycles",
				i, seq[i].Config, seq[i].EstCycles, par[i].EstCycles)
		}
	}
}

func TestParallelProgressCoversSpace(t *testing.T) {
	space := Space()[:60]
	var calls atomic.Int64
	var sawTotal atomic.Bool
	_, err := newExplorer().EvaluateAllParallel(space, 4, func(done, total int) {
		calls.Add(1)
		if total != len(space) {
			t.Errorf("progress total %d, want %d", total, len(space))
		}
		if done == total {
			sawTotal.Store(true)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != int64(len(space)) {
		t.Errorf("progress called %d times, want %d", got, len(space))
	}
	if !sawTotal.Load() {
		t.Error("progress never reported completion")
	}
}

func TestParallelErrorMatchesSequential(t *testing.T) {
	cfgs := []Config{
		{ModMul: mpz.ModMulBasecase, Window: 2, CRT: rsakey.CRTNone, Radix: 32, Cache: mpz.CacheNone},
		{ModMul: mpz.ModMulBasecase, Window: 9, CRT: rsakey.CRTNone, Radix: 32, Cache: mpz.CacheNone},
		{ModMul: mpz.ModMulBasecase, Window: 0, CRT: rsakey.CRTNone, Radix: 32, Cache: mpz.CacheNone},
	}
	seqErr := func() error { _, err := newExplorer().EvaluateAllParallel(cfgs, 1, nil); return err }()
	parErr := func() error { _, err := newExplorer().EvaluateAllParallel(cfgs, 4, nil); return err }()
	if seqErr == nil || parErr == nil {
		t.Fatalf("invalid candidates accepted: seq=%v par=%v", seqErr, parErr)
	}
	// Both report the lowest-index failing candidate (window 9 at index 1).
	if seqErr.Error() != parErr.Error() {
		t.Errorf("error mismatch:\n  sequential: %v\n  parallel:   %v", seqErr, parErr)
	}
	if !strings.Contains(seqErr.Error(), "window 9") {
		t.Errorf("error %q does not name the first failing candidate", seqErr)
	}
}

// TestPriceCache verifies the memoized pricing layer: candidates whose
// kernel profiles coincide (cache-reducer vs cache-powers on the
// single-decrypt workload) are priced once, and re-exploring an identical
// space is served almost entirely from the memo.
func TestPriceCache(t *testing.T) {
	e := New(testExplorer.Models, testKey, 77)
	space := Space()
	first, err := e.EvaluateAllParallel(space, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1 := e.CacheStats()
	if s1.Misses == 0 || s1.Hits == 0 {
		t.Fatalf("first pass stats %v: want both hits (coinciding profiles) and misses", s1)
	}
	if s1.Hits+s1.Misses != uint64(len(space)) {
		t.Errorf("first pass priced %d profiles, want %d", s1.Hits+s1.Misses, len(space))
	}
	second, err := e.EvaluateAllParallel(space, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2 := e.CacheStats()
	if s2.Misses != s1.Misses {
		t.Errorf("second pass computed %d new pricings, want 0", s2.Misses-s1.Misses)
	}
	for i := range first {
		if first[i].Config != second[i].Config || first[i].EstCycles != second[i].EstCycles {
			t.Fatalf("rank %d changed across cached re-exploration", i)
		}
	}
	if s2.HitRate() <= s1.HitRate() {
		t.Errorf("hit rate did not improve: %v -> %v", s1, s2)
	}
}
