// Online re-scoring: the serving daemon's governor feeds the live
// workload-mix fingerprint back into the same memoized macro-model
// pricing the offline §4.3 study uses, closing the loop between the DSE
// engine and the gateway.  The trace and its macro-model price depend
// only on the candidate (the workload representative is fixed), so a
// mix shift re-weights cached prices instead of re-tracing — steady-state
// re-scores do no native work at all.
package explore

import (
	"sort"

	"wisp/internal/mpz"
	"wisp/internal/rsakey"
)

// ServingSpace enumerates the candidates a live gateway can actually
// switch between at runtime: every modmul × window × CRT × cache point
// at the native radix 32.  The radix-16 half of the offline space is an
// analytic trace transform — priceable for hardware what-ifs, not
// executable — so an online governor must never select it.
func ServingSpace() []Config {
	var out []Config
	for _, alg := range mpz.ModMulAlgs {
		for _, w := range Windows {
			for _, crt := range rsakey.CRTModes {
				for _, cache := range mpz.CacheModes {
					out = append(out, Config{ModMul: alg, Window: w, CRT: crt, Radix: 32, Cache: cache})
				}
			}
		}
	}
	return out
}

// MixFingerprint is the live workload mix as the serving telemetry sees
// it: what fraction of serving time the gateway currently spends in RSA
// private-key work.  A public-key-heavy mix (morning handshake storms)
// pushes the share toward 1 and makes decrypt-cycle differences between
// candidates matter; a record-layer-heavy mix (streaming evenings)
// pushes it toward 0 and damps them — the same candidate ranking yields
// different switch decisions under different traffic.
type MixFingerprint struct {
	// RSATimeShare is the fraction of serving time spent in rsa-decrypt
	// work, in [0,1].  Values outside the range are clamped.
	RSATimeShare float64
}

func (m MixFingerprint) share() float64 {
	switch {
	case m.RSATimeShare < 0:
		return 0
	case m.RSATimeShare > 1:
		return 1
	default:
		return m.RSATimeShare
	}
}

// ReScoreResult is one candidate re-priced for a live mix.
type ReScoreResult struct {
	Result
	// MixImprove is the predicted fractional whole-mix serving time saved
	// by switching from cur to this candidate: the candidate's decrypt
	// cycle advantage scaled by the RSA share of the mix.  Negative for
	// candidates slower than cur.
	MixImprove float64
}

// ReScoreMix prices every candidate for the given live mix against the
// configuration currently serving, best first.  Per-candidate decrypt
// cycles come from the memoized macro-model flow (Evaluate), so periodic
// re-scoring as traffic shifts costs a map lookup per candidate once the
// traces are warm.  Ties (including the cur candidate against itself, at
// exactly 0 improvement) break toward fewer cycles, then the candidate
// name, so rankings are deterministic.
func (e *Explorer) ReScoreMix(mix MixFingerprint, cur Config, cfgs []Config) ([]ReScoreResult, error) {
	curRes, err := e.Evaluate(cur)
	if err != nil {
		return nil, err
	}
	share := mix.share()
	out := make([]ReScoreResult, 0, len(cfgs))
	for _, cfg := range cfgs {
		r, err := e.Evaluate(cfg)
		if err != nil {
			return nil, err
		}
		rr := ReScoreResult{Result: r}
		if curRes.EstCycles > 0 {
			rr.MixImprove = share * (1 - r.EstCycles/curRes.EstCycles)
		}
		out = append(out, rr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MixImprove != out[j].MixImprove {
			return out[i].MixImprove > out[j].MixImprove
		}
		if out[i].EstCycles != out[j].EstCycles {
			return out[i].EstCycles < out[j].EstCycles
		}
		return out[i].Config.String() < out[j].Config.String()
	})
	return out, nil
}
