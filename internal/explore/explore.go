// Package explore implements the algorithm design-space exploration phase
// of the paper (§3.2, evaluated in §4.3): modular-exponentiation candidates
// spanning five modular-multiplication algorithms, five exponent block
// (window) sizes, three Chinese-Remainder-Theorem implementations, two
// radix sizes and three software caching options — 450 configurations.
//
// Each candidate executes natively (plain Go, the analogue of the paper's
// native workstation execution) with kernel-invocation tracing; the traced
// profile is then priced with the ISS-characterized performance
// macro-models.  For validation, the same traced profile can be replayed
// invocation-by-invocation on the actual ISS, which is orders of magnitude
// slower — the paper's 1407× exploration speedup — and provides the ground
// truth for the macro-models' estimation error (~11.8 % in the paper).
package explore

import (
	"fmt"
	"math/rand"
	"time"

	"wisp/internal/kernels"
	"wisp/internal/macromodel"
	"wisp/internal/mpz"
	"wisp/internal/rsakey"
	"wisp/internal/sim"
)

// Config is one point of the exploration space.
type Config struct {
	ModMul mpz.ModMulAlg
	Window int // exponent scan block size in bits, 1..5
	CRT    rsakey.CRTMode
	Radix  int // limb radix: 32 (native) or 16
	Cache  mpz.CacheMode
}

// String renders the configuration compactly.
func (c Config) String() string {
	return fmt.Sprintf("%s/w%d/%s/r%d/%s", c.ModMul, c.Window, c.CRT, c.Radix, c.Cache)
}

// Validate reports whether the configuration is well-formed.
func (c Config) Validate() error {
	if c.Window < 1 || c.Window > 5 {
		return fmt.Errorf("explore: window %d outside [1,5]", c.Window)
	}
	if c.Radix != 16 && c.Radix != 32 {
		return fmt.Errorf("explore: radix %d not in {16,32}", c.Radix)
	}
	return nil
}

// Radixes lists the two limb radixes of the space.
var Radixes = []int{32, 16}

// Windows lists the five exponent block sizes of the space.
var Windows = []int{1, 2, 3, 4, 5}

// Space enumerates the full 5×5×3×2×3 = 450-candidate space.
func Space() []Config {
	var out []Config
	for _, alg := range mpz.ModMulAlgs {
		for _, w := range Windows {
			for _, crt := range rsakey.CRTModes {
				for _, radix := range Radixes {
					for _, cache := range mpz.CacheModes {
						out = append(out, Config{ModMul: alg, Window: w, CRT: crt, Radix: radix, Cache: cache})
					}
				}
			}
		}
	}
	return out
}

// Result is one evaluated candidate.
type Result struct {
	Config
	EstCycles  float64       // macro-model estimate of target-core cycles
	NativeTime time.Duration // wall time of the native traced run
	Missing    []string      // routines lacking macro-models (should be empty)
}

// Explorer evaluates candidates on a fixed RSA decryption workload.  Its
// methods are safe for concurrent use: the model set, key and ciphertext
// are read-only after construction and every evaluation builds its own
// trace, so EvaluateAllParallel can fan candidates out across goroutines.
type Explorer struct {
	Models *macromodel.ModelSet // characterized kernel models (base or TIE core)
	Key    *rsakey.PrivateKey
	Cipher *mpz.Int // the ciphertext representative decrypted by every candidate

	cache *priceCache // memoized macro-model pricings by trace fingerprint
}

// New creates an explorer for the given key, decrypting a fixed random
// representative derived from seed.
func New(models *macromodel.ModelSet, key *rsakey.PrivateKey, seed int64) *Explorer {
	rng := rand.New(rand.NewSource(seed))
	return &Explorer{
		Models: models,
		Key:    key,
		Cipher: mpz.RandBelow(rng, key.N),
		cache:  newPriceCache(),
	}
}

// trace runs the candidate natively and returns its kernel trace.
func (e *Explorer) trace(cfg Config) (*mpz.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr := mpz.NewTrace()
	ctx := mpz.NewCtx(tr)
	expCfg := mpz.ExpConfig{Alg: cfg.ModMul, WindowBits: cfg.Window, Cache: cfg.Cache}
	if _, err := rsakey.DecryptCfg(ctx, e.Key, e.Cipher, expCfg, cfg.CRT); err != nil {
		return nil, err
	}
	return tr, nil
}

// radixAdjust maps a radix-32 trace onto the radix-16 implementation's
// kernel profile: every operand doubles in element count, and the
// multiply-scan kernels additionally double their invocation count (the
// outer loop walks twice as many half-width limbs).  This analytic
// transformation substitutes for maintaining a second limb width in the
// library; the exploration only needs the relative cost, which it
// preserves: radix 16 does the same word-level work on twice the elements.
func radixAdjust(tr *mpz.Trace, radix int) *mpz.Trace {
	if radix == 32 {
		return tr
	}
	out := mpz.NewTrace()
	for _, inv := range tr.Invocations() {
		count := inv.Count
		switch inv.Routine {
		case "mpn_addmul_1", "mpn_submul_1", "mpn_mul_1":
			count *= 2
		}
		out.Add(inv.Routine, inv.N*2, count)
	}
	return out
}

// Evaluate runs one candidate natively and prices it with the macro-models.
func (e *Explorer) Evaluate(cfg Config) (Result, error) {
	start := time.Now()
	tr, err := e.trace(cfg)
	if err != nil {
		return Result{}, err
	}
	tr = radixAdjust(tr, cfg.Radix)
	cycles, missing := e.cache.price(tr.Fingerprint(), func() (float64, []string) {
		return tr.EstimateCycles(e.Models.Estimators())
	})
	return Result{
		Config:     cfg,
		EstCycles:  cycles,
		NativeTime: time.Since(start),
		Missing:    missing,
	}, nil
}

// EvaluateAll prices every candidate sequentially and returns results
// sorted best-first.  It is the workers=1 case of EvaluateAllParallel.
func (e *Explorer) EvaluateAll(cfgs []Config) ([]Result, error) {
	return e.EvaluateAllParallel(cfgs, 1, nil)
}

func sortResults(rs []Result) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].EstCycles < rs[j-1].EstCycles; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// ReplayResult is the outcome of an ISS ground-truth replay.
type ReplayResult struct {
	Cycles float64 // measured (sampled and scaled) target-core cycles
	// Elapsed is the wall time of the sampled replay.
	Elapsed time.Duration
	// ProjectedFull extrapolates the wall time of replaying every traced
	// invocation — the cost of the paper's full ISS evaluation, which it
	// could afford for only 6 of the 450+ candidates.
	ProjectedFull time.Duration
	Invocations   uint64 // total traced invocations
	Executed      uint64 // invocations actually run on the ISS
}

// ReplayISS measures a candidate's kernel work directly on the ISS: each
// traced invocation bucket is executed on the simulated core with fresh
// random operands (up to sampleCap executions per bucket, scaled to the
// full count).  This is the slow ground-truth path of §4.3.
//
// Only radix-32 candidates can be replayed (the kernels are 32-bit).
func (e *Explorer) ReplayISS(cfg Config, simCfg sim.Config, sampleCap int, seed int64) (*ReplayResult, error) {
	if cfg.Radix != 32 {
		return nil, fmt.Errorf("explore: ISS replay supports radix 32 only")
	}
	if sampleCap < 1 {
		return nil, fmt.Errorf("explore: sampleCap must be ≥ 1")
	}
	tr, err := e.trace(cfg)
	if err != nil {
		return nil, err
	}
	cpu, err := kernels.MPNBase().Build(simCfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	res := &ReplayResult{}
	start := time.Now()
	for _, inv := range tr.Invocations() {
		reps := int(inv.Count)
		if reps > sampleCap {
			reps = sampleCap
		}
		var sum uint64
		for i := 0; i < reps; i++ {
			c, err := kernels.RunMPNRoutineISS(cpu, rng, inv.Routine, inv.N)
			if err != nil {
				return nil, fmt.Errorf("explore: replaying %s(n=%d): %w", inv.Routine, inv.N, err)
			}
			sum += c
		}
		res.Cycles += float64(sum) / float64(reps) * float64(inv.Count)
		res.Invocations += inv.Count
		res.Executed += uint64(reps)
	}
	res.Elapsed = time.Since(start)
	if res.Executed > 0 {
		res.ProjectedFull = time.Duration(float64(res.Elapsed) * float64(res.Invocations) / float64(res.Executed))
	}
	return res, nil
}
