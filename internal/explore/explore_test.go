package explore

import (
	"math"
	"math/rand"
	"testing"

	"wisp/internal/kernels"
	"wisp/internal/mpz"
	"wisp/internal/rsakey"
	"wisp/internal/sim"
)

var (
	testKey      = mustKey()
	testExplorer = buildExplorer()
)

func mustKey() *rsakey.PrivateKey {
	k, err := rsakey.GenerateKey(rand.New(rand.NewSource(5)), 256)
	if err != nil {
		panic(err)
	}
	return k
}

func buildExplorer() *Explorer {
	set, err := kernels.CharacterizeMPNBase(sim.DefaultConfig(), []int{1, 2, 4, 8, 16, 32}, 2, 42)
	if err != nil {
		panic(err)
	}
	return New(set, testKey, 77)
}

func newExplorer() *Explorer { return testExplorer }

func TestSpaceSize(t *testing.T) {
	cfgs := Space()
	if len(cfgs) != 450 {
		t.Fatalf("space has %d candidates, want 450 (5 modmul × 5 windows × 3 CRT × 2 radix × 3 cache)", len(cfgs))
	}
	seen := make(map[string]bool)
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Fatalf("invalid candidate %v: %v", c, err)
		}
		if seen[c.String()] {
			t.Fatalf("duplicate candidate %v", c)
		}
		seen[c.String()] = true
	}
}

func TestEvaluateProducesPositiveEstimates(t *testing.T) {
	e := newExplorer()
	for _, cfg := range []Config{
		{ModMul: mpz.ModMulBasecase, Window: 1, CRT: rsakey.CRTNone, Radix: 32, Cache: mpz.CacheNone},
		{ModMul: mpz.ModMulMontgomery, Window: 4, CRT: rsakey.CRTGarner, Radix: 32, Cache: mpz.CacheReducer},
		{ModMul: mpz.ModMulBarrett, Window: 3, CRT: rsakey.CRTGauss, Radix: 16, Cache: mpz.CachePowers},
	} {
		r, err := e.Evaluate(cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if r.EstCycles <= 0 {
			t.Errorf("%v: estimate %v", cfg, r.EstCycles)
		}
		if len(r.Missing) != 0 {
			t.Errorf("%v: missing models %v", cfg, r.Missing)
		}
	}
}

func TestExplorationOrdering(t *testing.T) {
	// The known algorithmic facts must surface in the estimates:
	// Montgomery+CRT beats basecase binary without CRT; Blakley is worst;
	// radix 16 never beats radix 32.
	e := newExplorer()
	eval := func(cfg Config) float64 {
		r, err := e.Evaluate(cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		return r.EstCycles
	}
	naive := eval(Config{ModMul: mpz.ModMulBasecase, Window: 1, CRT: rsakey.CRTNone, Radix: 32, Cache: mpz.CacheNone})
	tuned := eval(Config{ModMul: mpz.ModMulMontgomery, Window: 4, CRT: rsakey.CRTGarner, Radix: 32, Cache: mpz.CacheReducer})
	blakley := eval(Config{ModMul: mpz.ModMulBlakley, Window: 1, CRT: rsakey.CRTNone, Radix: 32, Cache: mpz.CacheNone})
	if tuned >= naive {
		t.Errorf("tuned (%.0f) not faster than naive (%.0f)", tuned, naive)
	}
	if blakley <= naive {
		t.Errorf("Blakley (%.0f) not slower than basecase (%.0f)", blakley, naive)
	}
	r32 := eval(Config{ModMul: mpz.ModMulBarrett, Window: 3, CRT: rsakey.CRTGarner, Radix: 32, Cache: mpz.CacheReducer})
	r16 := eval(Config{ModMul: mpz.ModMulBarrett, Window: 3, CRT: rsakey.CRTGarner, Radix: 16, Cache: mpz.CacheReducer})
	if r16 <= r32 {
		t.Errorf("radix 16 (%.0f) not slower than radix 32 (%.0f)", r16, r32)
	}
}

func TestEvaluateAllSorted(t *testing.T) {
	e := newExplorer()
	cfgs := []Config{
		{ModMul: mpz.ModMulBlakley, Window: 1, CRT: rsakey.CRTNone, Radix: 32, Cache: mpz.CacheNone},
		{ModMul: mpz.ModMulMontgomery, Window: 4, CRT: rsakey.CRTGarner, Radix: 32, Cache: mpz.CacheReducer},
		{ModMul: mpz.ModMulBasecase, Window: 2, CRT: rsakey.CRTGauss, Radix: 32, Cache: mpz.CacheNone},
	}
	rs, err := e.EvaluateAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].EstCycles < rs[i-1].EstCycles {
			t.Error("results not sorted best-first")
		}
	}
	if rs[0].ModMul != mpz.ModMulMontgomery {
		t.Errorf("best candidate is %v, want montgomery", rs[0].Config)
	}
}

func TestReplayISSTracksEstimate(t *testing.T) {
	// The macro-model estimate should be within the paper's error regime
	// (~12 %) of a sampled ISS replay of the same trace.
	e := newExplorer()
	cfg := Config{ModMul: mpz.ModMulMontgomery, Window: 2, CRT: rsakey.CRTGarner, Radix: 32, Cache: mpz.CacheReducer}
	est, err := e.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.ReplayISS(cfg, sim.DefaultConfig(), 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	errPct := 100 * math.Abs(est.EstCycles-res.Cycles) / res.Cycles
	t.Logf("estimate %.0f vs ISS replay %.0f (%.1f%% error)", est.EstCycles, res.Cycles, errPct)
	if res.Invocations < res.Executed || res.Executed == 0 {
		t.Errorf("replay accounting wrong: %+v", res)
	}
	if res.ProjectedFull < res.Elapsed {
		t.Error("projected full replay shorter than sampled replay")
	}
	if errPct > 20 {
		t.Errorf("macro-model error %.1f%% exceeds 20%%", errPct)
	}
}

func TestReplayISSValidation(t *testing.T) {
	e := newExplorer()
	if _, err := e.ReplayISS(Config{ModMul: mpz.ModMulBasecase, Window: 1, CRT: rsakey.CRTNone, Radix: 16, Cache: mpz.CacheNone}, sim.DefaultConfig(), 1, 1); err == nil {
		t.Error("radix-16 replay accepted")
	}
	if _, err := e.ReplayISS(Config{ModMul: mpz.ModMulBasecase, Window: 1, CRT: rsakey.CRTNone, Radix: 32, Cache: mpz.CacheNone}, sim.DefaultConfig(), 0, 1); err == nil {
		t.Error("sampleCap 0 accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{ModMul: mpz.ModMulBasecase, Window: 0, Radix: 32},
		{ModMul: mpz.ModMulBasecase, Window: 6, Radix: 32},
		{ModMul: mpz.ModMulBasecase, Window: 2, Radix: 8},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%v) accepted", c)
		}
	}
}

func TestRadixAdjust(t *testing.T) {
	tr := mpz.NewTrace()
	tr.Add("mpn_addmul_1", 8, 10)
	tr.Add("mpn_add_n", 8, 4)
	adj := radixAdjust(tr, 16)
	for _, inv := range adj.Invocations() {
		switch inv.Routine {
		case "mpn_addmul_1":
			if inv.N != 16 || inv.Count != 20 {
				t.Errorf("addmul adjusted to n=%d ×%d", inv.N, inv.Count)
			}
		case "mpn_add_n":
			if inv.N != 16 || inv.Count != 4 {
				t.Errorf("add_n adjusted to n=%d ×%d", inv.N, inv.Count)
			}
		}
	}
	if same := radixAdjust(tr, 32); same != tr {
		t.Error("radix 32 should be identity")
	}
}
