package explore

import (
	"math"
	"testing"

	"wisp/internal/mpz"
	"wisp/internal/rsakey"
)

func TestServingSpace(t *testing.T) {
	cfgs := ServingSpace()
	if len(cfgs) != 225 {
		t.Fatalf("serving space has %d candidates, want 225 (5 modmul × 5 windows × 3 CRT × 3 cache, radix 32 only)", len(cfgs))
	}
	seen := make(map[string]bool)
	for _, c := range cfgs {
		if c.Radix != 32 {
			t.Fatalf("serving candidate %v at radix %d: only the native radix is executable online", c, c.Radix)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("invalid serving candidate %v: %v", c, err)
		}
		if seen[c.String()] {
			t.Fatalf("duplicate serving candidate %v", c)
		}
		seen[c.String()] = true
	}
}

// TestReScoreMix checks the mix-weighted re-ranking math: improvement is
// the cycle advantage over cur scaled linearly by the RSA time share, so
// a zero-share mix damps every candidate to zero improvement, cur itself
// always scores zero, and the results come back best first.
func TestReScoreMix(t *testing.T) {
	e := newExplorer()
	cur := Config{ModMul: mpz.ModMulBasecase, Window: 1, CRT: rsakey.CRTNone, Radix: 32, Cache: mpz.CacheNone}
	cands := []Config{
		cur,
		{ModMul: mpz.ModMulMontgomery, Window: 4, CRT: rsakey.CRTGarner, Radix: 32, Cache: mpz.CacheReducer},
		{ModMul: mpz.ModMulKaratsuba, Window: 3, CRT: rsakey.CRTGauss, Radix: 32, Cache: mpz.CachePowers},
	}

	full, err := e.ReScoreMix(MixFingerprint{RSATimeShare: 1}, cur, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(cands) {
		t.Fatalf("got %d results, want %d", len(full), len(cands))
	}
	for i := 1; i < len(full); i++ {
		if full[i].MixImprove > full[i-1].MixImprove {
			t.Fatalf("results not sorted best first: %v before %v", full[i-1].MixImprove, full[i].MixImprove)
		}
	}
	curCycles := full[0].EstCycles // recover cur's price for the math check
	for _, r := range full {
		if r.Config == cur {
			curCycles = r.EstCycles
			if r.MixImprove != 0 {
				t.Fatalf("cur scored %.4f against itself, want 0", r.MixImprove)
			}
		}
	}
	for _, r := range full {
		want := 1 - r.EstCycles/curCycles
		if math.Abs(r.MixImprove-want) > 1e-12 {
			t.Fatalf("%v: improve %.6f, want %.6f at share 1", r.Config, r.MixImprove, want)
		}
	}
	// The tuned candidates beat naive basecase/w1 by a wide margin in the
	// offline study; a full-RSA mix must preserve that.
	if full[0].Config == cur || full[0].MixImprove <= 0 {
		t.Fatalf("best candidate %v improve %.4f: expected a tuned config to beat basecase/w1", full[0].Config, full[0].MixImprove)
	}

	// Half the share, half the improvement — the same ranking, damped.
	half, err := e.ReScoreMix(MixFingerprint{RSATimeShare: 0.5}, cur, cands)
	if err != nil {
		t.Fatal(err)
	}
	for i := range half {
		if half[i].Config != full[i].Config {
			t.Fatalf("ranking changed with share: %v vs %v", half[i].Config, full[i].Config)
		}
		if math.Abs(half[i].MixImprove-full[i].MixImprove/2) > 1e-12 {
			t.Fatalf("%v: improve %.6f at share 0.5, want %.6f", half[i].Config, half[i].MixImprove, full[i].MixImprove/2)
		}
	}

	// Share clamps: a record-only mix (and anything below 0) predicts no
	// benefit from any switch.
	for _, share := range []float64{0, -3} {
		zero, err := e.ReScoreMix(MixFingerprint{RSATimeShare: share}, cur, cands)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range zero {
			if r.MixImprove != 0 {
				t.Fatalf("share %.1f: %v improve %.4f, want 0", share, r.Config, r.MixImprove)
			}
		}
	}
}
