package wisp

import "wisp/internal/gap"

// renderGap builds the Figure 1 table with the measured bulk-cipher cost
// per bit plugged into the requirement model.
func renderGap(cipherCyclesPerBit float64) string {
	cost := gap.CyclesPerBit{
		Cipher: cipherCyclesPerBit,
		MAC:    gap.Default3DES.MAC,
		Pubkey: gap.Default3DES.Pubkey,
	}
	return gap.Render(gap.Figure1(cost))
}

// GapRows exposes the Figure 1 rows for programmatic use.
func GapRows(cipherCyclesPerBit float64) []gap.Row {
	cost := gap.CyclesPerBit{
		Cipher: cipherCyclesPerBit,
		MAC:    gap.Default3DES.MAC,
		Pubkey: gap.Default3DES.Pubkey,
	}
	return gap.Figure1(cost)
}
