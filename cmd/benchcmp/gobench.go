package main

// Go-benchmark gate mode: instead of serve-bench records, compare the
// raw output of `go test -bench` against a checked-in JSON baseline.
// This is how the batched-kernel gate (make bench-batch) runs: the
// BenchmarkBatchModExp1024/k=N family is measured fresh, each bench's
// ns/op and allocs/op are gated against bench/BENCH_batch.baseline.json,
// and -assert-lane-speedup enforces the per-lane win that justifies the
// batched engine (k=4 must beat four scalar k=1 calls by a margin).

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	goBenchCurrent = flag.String("go-bench-current", "",
		"raw `go test -bench` output to gate (selects go-benchmark mode)")
	goBenchBaseline = flag.String("go-bench-baseline", "",
		"checked-in go-benchmark baseline JSON to gate against")
	goBenchOut = flag.String("go-bench-out", "",
		"write the current go-benchmark results as a new baseline JSON and exit")
	assertLaneSpeedup = flag.String("assert-lane-speedup", "",
		"A/B assertion 'A<B': require bench A's per-lane ns/op below bench B's per-lane ns/op x -lane-factor (lanes parsed from a /k=N name suffix)")
	laneFactor = flag.Float64("lane-factor", 1.0,
		"slack multiplier for -assert-lane-speedup (0.85 = A's per-lane cost must be at least 15% below B's)")
)

// goBenchResult is one benchmark's measured columns.
type goBenchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// goBenchFile is the checked-in baseline schema.
type goBenchFile struct {
	Schema     int                      `json:"schema"`
	Benchmarks map[string]goBenchResult `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkBatchModExp1024/k=4-8  20  7581234 ns/op  1868 B/op  9 allocs/op
var benchLine = regexp.MustCompile(`^Benchmark(\S+)\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// gomaxprocsSuffix is the -N name suffix go test appends when
// GOMAXPROCS > 1; stripping it keeps baselines portable across hosts.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseGoBench reads raw `go test -bench` output into results keyed by
// benchmark name (Benchmark prefix and GOMAXPROCS suffix stripped).
func parseGoBench(path string) (map[string]goBenchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]goBenchResult)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		var r goBenchResult
		r.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			r.BytesPerOp, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" {
			r.AllocsPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		out[name] = r
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in %s", path)
	}
	return out, nil
}

// lanes extracts the lane count from a /k=N benchmark name suffix
// (1 when absent), so per-lane costs compare across batch widths.
func lanes(name string) int {
	if i := strings.LastIndex(name, "/k="); i >= 0 {
		if k, err := strconv.Atoi(name[i+3:]); err == nil && k > 0 {
			return k
		}
	}
	return 1
}

// runGoBench is the go-benchmark gate: regression check of the current
// run against the baseline (ns/op and allocs/op beyond the thresholds
// fail), plus the optional per-lane A/B assertion.
func runGoBench(threshold, allocThreshold float64) {
	cur, err := parseGoBench(*goBenchCurrent)
	if err != nil {
		fatal(err)
	}

	if *goBenchOut != "" {
		out := goBenchFile{Schema: 1, Benchmarks: cur}
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*goBenchOut, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcmp: wrote %d benchmarks to %s\n", len(cur), *goBenchOut)
		return
	}

	var failures []string
	if *goBenchBaseline != "" {
		raw, err := os.ReadFile(*goBenchBaseline)
		if err != nil {
			fatal(err)
		}
		var base goBenchFile
		if err := json.Unmarshal(raw, &base); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *goBenchBaseline, err))
		}
		names := make([]string, 0, len(base.Benchmarks))
		for name := range base.Benchmarks {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			b := base.Benchmarks[name]
			c, ok := cur[name]
			if !ok {
				failures = append(failures, fmt.Sprintf("bench %q in baseline but not in current run", name))
				continue
			}
			if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+threshold) {
				failures = append(failures, fmt.Sprintf(
					"bench %q ns/op %.0f is %.0f%% above baseline %.0f",
					name, c.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), b.NsPerOp))
			} else {
				fmt.Printf("ok: bench %q ns/op %.0f vs baseline %.0f\n", name, c.NsPerOp, b.NsPerOp)
			}
			// allocs/op is near-deterministic; gate with the fractional
			// threshold plus two allocations of absolute grace so tiny
			// counts (3 vs 4) don't flap.
			if limit := b.AllocsPerOp*(1+allocThreshold) + 2; c.AllocsPerOp > limit {
				failures = append(failures, fmt.Sprintf(
					"bench %q allocs/op %.0f above baseline %.0f (limit %.1f)",
					name, c.AllocsPerOp, b.AllocsPerOp, limit))
			}
		}
	}

	if *assertLaneSpeedup != "" {
		parts := strings.SplitN(*assertLaneSpeedup, "<", 2)
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			fatal(fmt.Errorf("bad -assert-lane-speedup spec %q (want 'A<B')", *assertLaneSpeedup))
		}
		a, ok := cur[parts[0]]
		if !ok {
			fatal(fmt.Errorf("current run has no bench %q", parts[0]))
		}
		b, ok := cur[parts[1]]
		if !ok {
			fatal(fmt.Errorf("current run has no bench %q", parts[1]))
		}
		perA := a.NsPerOp / float64(lanes(parts[0]))
		perB := b.NsPerOp / float64(lanes(parts[1]))
		bound := perB * *laneFactor
		if perA >= bound {
			failures = append(failures, fmt.Sprintf(
				"%q per-lane %.0f ns not below %q per-lane %.0f ns x %.2f = %.0f ns",
				parts[0], perA, parts[1], perB, *laneFactor, bound))
		} else {
			fmt.Printf("benchcmp: %q per-lane %.0f ns vs %q per-lane %.0f ns — per-lane speedup %.2fx\n",
				parts[0], perA, parts[1], perB, perB/perA)
		}
	}

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d go-benchmark failure(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  -", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchcmp: go-benchmark gate passed")
}
