// Command benchcmp is the CI perf-regression gate: it compares a fresh
// serve-bench record (BENCH_serve.json, written by wispload -bench-out)
// against the checked-in baseline and exits nonzero when any tracked
// metric regressed beyond the threshold.
//
// Usage:
//
//	benchcmp -baseline bench/BENCH_serve.baseline.json -current BENCH_serve.json [-threshold 0.25] [-label NAME]
//
// Records carry an experiment label (wispload -bench-label) so cluster
// and single-node records can share bench/ without clobbering each
// other's baselines: comparing two records with different non-empty
// labels always fails, and -label NAME additionally requires the current
// record to carry exactly that label (the baseline may be unlabeled —
// pre-label baselines stay usable).
//
// Latency regressions are per-op-class p50/p99 increases; a throughput
// regression is an RPS decrease; an allocation regression is an
// allocs-per-op increase beyond -alloc-threshold (skipped for baselines
// that predate the allocation columns).  Op classes present in only one record
// are reported but never fail the gate (machine speed differences change
// which classes have enough samples), and classes with fewer than
// -min-count samples are skipped as noise.  Digest mismatches in the
// current record always fail.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"wisp/internal/serve"
)

func main() {
	baselinePath := flag.String("baseline", "bench/BENCH_serve.baseline.json", "checked-in baseline record")
	currentPath := flag.String("current", "BENCH_serve.json", "freshly measured record")
	threshold := flag.Float64("threshold", 0.25, "max tolerated fractional regression (0.25 = 25%)")
	allocThreshold := flag.Float64("alloc-threshold", 0.25,
		"max tolerated fractional allocs/op increase (gate skipped when the baseline lacks allocation columns)")
	minCount := flag.Int("min-count", 16, "skip op classes with fewer samples than this in either record")
	assertLt := flag.String("assert-p99-lt", "",
		"A/B assertion 'curOp<baseOp': require the current record's curOp p99 below the baseline record's baseOp p99 (skips the regression comparison)")
	p99Factor := flag.Float64("p99-factor", 1.0,
		"slack multiplier for -assert-p99-lt: require curOp p99 < baseOp p99 x factor (1.0 = strictly lower; the fairness gate uses 1.5)")
	label := flag.String("label", "",
		"require the current record to carry this experiment label (and the baseline to carry it or be unlabeled)")
	assertRPS := flag.Bool("assert-rps-gt", false,
		"A/B assertion: require the current record's throughput above the baseline's x -rps-factor with zero digest mismatches in either record (skips the regression comparison)")
	rpsFactor := flag.Float64("rps-factor", 1.0,
		"margin multiplier for -assert-rps-gt (1.1 = current must beat baseline by 10%)")
	flag.Parse()

	// Go-benchmark mode (gobench.go) gates `go test -bench` output
	// instead of serve-bench records.
	if *goBenchCurrent != "" {
		runGoBench(*threshold, *allocThreshold)
		return
	}

	base, err := serve.ReadBenchRecord(*baselinePath)
	if err != nil {
		fatal(err)
	}
	cur, err := serve.ReadBenchRecord(*currentPath)
	if err != nil {
		fatal(err)
	}
	if err := checkLabels(*label, base, cur); err != nil {
		fatal(err)
	}

	if *assertRPS {
		assertRPSGT(*rpsFactor, base, cur)
		return
	}
	if *assertLt != "" {
		assertP99LT(*assertLt, *p99Factor, base, cur)
		return
	}

	var failures []string
	if cur.Mismatches > 0 {
		failures = append(failures, fmt.Sprintf("current run has %d digest mismatches", cur.Mismatches))
	}

	// Throughput: lower is worse.
	if base.ThroughputRPS > 0 && cur.ThroughputRPS < base.ThroughputRPS*(1-*threshold) {
		failures = append(failures, fmt.Sprintf(
			"throughput %.1f rps is %.0f%% below baseline %.1f rps",
			cur.ThroughputRPS, 100*(1-cur.ThroughputRPS/base.ThroughputRPS), base.ThroughputRPS))
	}

	// Allocations per served op: higher is worse.  Gated only when the
	// baseline carries the schema-2 allocation columns — a schema-1
	// baseline (or one recorded without runtime stats) skips the gate
	// instead of failing it.
	switch {
	case base.AllocsPerOp <= 0:
		fmt.Printf("note: baseline (schema %d) has no allocs_per_op; allocation gate skipped\n", base.Schema)
	case cur.AllocsPerOp > base.AllocsPerOp*(1+*allocThreshold):
		failures = append(failures, fmt.Sprintf(
			"allocs/op %.0f is %.0f%% above baseline %.0f",
			cur.AllocsPerOp, 100*(cur.AllocsPerOp/base.AllocsPerOp-1), base.AllocsPerOp))
	default:
		fmt.Printf("ok: allocs/op %.0f vs baseline %.0f\n", cur.AllocsPerOp, base.AllocsPerOp)
	}

	ops := make([]string, 0, len(base.Ops))
	for op := range base.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		b := base.Ops[op]
		c, ok := cur.Ops[op]
		if !ok {
			fmt.Printf("note: op %q in baseline but not in current run\n", op)
			continue
		}
		if b.Count < *minCount || c.Count < *minCount {
			fmt.Printf("note: op %q skipped (samples %d vs %d below min %d)\n", op, b.Count, c.Count, *minCount)
			continue
		}
		check := func(name string, baseUS, curUS int64) {
			if baseUS > 0 && float64(curUS) > float64(baseUS)*(1+*threshold) {
				failures = append(failures, fmt.Sprintf(
					"op %q %s %dµs is %.0f%% above baseline %dµs",
					op, name, curUS, 100*(float64(curUS)/float64(baseUS)-1), baseUS))
			} else {
				fmt.Printf("ok: op %q %s %dµs vs baseline %dµs\n", op, name, curUS, baseUS)
			}
		}
		check("p50", b.P50US, c.P50US)
		check("p99", b.P99US, c.P99US)
	}
	for op := range cur.Ops {
		if _, ok := base.Ops[op]; !ok {
			fmt.Printf("note: op %q in current run but not in baseline\n", op)
		}
	}

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d regression(s) beyond %.0f%%:\n", len(failures), *threshold*100)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  -", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchcmp: no regressions beyond %.0f%% (baseline %s)\n", *threshold*100, *baselinePath)
}

// checkLabels refuses cross-experiment comparisons.  Two differently
// labeled records never compare (a cluster record against the single-node
// baseline would gate apples against oranges); with -label the current
// record must carry exactly that label, while an unlabeled baseline is
// accepted so existing baselines keep working.
func checkLabels(want string, base, cur *serve.BenchRecord) error {
	if base.Label != "" && cur.Label != "" && base.Label != cur.Label {
		return fmt.Errorf("label mismatch: baseline %q vs current %q", base.Label, cur.Label)
	}
	if want != "" {
		if cur.Label != want {
			return fmt.Errorf("current record label %q, want %q", cur.Label, want)
		}
		if base.Label != "" && base.Label != want {
			return fmt.Errorf("baseline record label %q, want %q or unlabeled", base.Label, want)
		}
	}
	return nil
}

// assertP99LT enforces the serve-bench A/B contract: the op class named
// left of '<' (in the current record) must have a p99 below the baseline
// record's baseOp p99 times factor, and neither run may carry digest
// mismatches.  Factor 1.0 is the strict A/B win ("resumed beats full");
// the fairness gate runs with factor 1.5 ("legit p99 under attack stays
// within 1.5x of attack-free").
func assertP99LT(spec string, factor float64, base, cur *serve.BenchRecord) {
	parts := strings.SplitN(spec, "<", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		fatal(fmt.Errorf("bad -assert-p99-lt spec %q (want 'curOp<baseOp')", spec))
	}
	if factor <= 0 {
		fatal(fmt.Errorf("bad -p99-factor %g (must be positive)", factor))
	}
	curOp, baseOp := parts[0], parts[1]
	if base.Mismatches > 0 || cur.Mismatches > 0 {
		fatal(fmt.Errorf("digest mismatches present (baseline %d, current %d)", base.Mismatches, cur.Mismatches))
	}
	b, ok := base.Ops[baseOp]
	if !ok {
		fatal(fmt.Errorf("baseline record has no op %q", baseOp))
	}
	c, ok := cur.Ops[curOp]
	if !ok {
		fatal(fmt.Errorf("current record has no op %q", curOp))
	}
	if c.Count == 0 || b.Count == 0 {
		fatal(fmt.Errorf("empty samples: %q n=%d, %q n=%d", curOp, c.Count, baseOp, b.Count))
	}
	bound := float64(b.P99US) * factor
	if float64(c.P99US) >= bound {
		fatal(fmt.Errorf("%q p99 %dµs (n=%d) not below %q p99 %dµs x %.2f = %.0fµs (n=%d)",
			curOp, c.P99US, c.Count, baseOp, b.P99US, factor, bound, b.Count))
	}
	fmt.Printf("benchcmp: %q p99 %dµs (n=%d, p50 %dµs) within %.2fx of %q p99 %dµs (n=%d, p50 %dµs) — ratio %.2f\n",
		curOp, c.P99US, c.Count, c.P50US, factor, baseOp, b.P99US, b.Count, b.P50US,
		float64(c.P99US)/float64(b.P99US))
}

// assertRPSGT is the serve-bench batched A/B contract: the current
// (batched) record must deliver throughput above the baseline (scalar)
// record times factor, with zero digest mismatches on either side.
func assertRPSGT(factor float64, base, cur *serve.BenchRecord) {
	if factor <= 0 {
		fatal(fmt.Errorf("bad -rps-factor %g (must be positive)", factor))
	}
	if base.Mismatches > 0 || cur.Mismatches > 0 {
		fatal(fmt.Errorf("digest mismatches present (baseline %d, current %d)", base.Mismatches, cur.Mismatches))
	}
	if base.ThroughputRPS <= 0 || cur.ThroughputRPS <= 0 {
		fatal(fmt.Errorf("empty throughput: baseline %.1f rps, current %.1f rps",
			base.ThroughputRPS, cur.ThroughputRPS))
	}
	bound := base.ThroughputRPS * factor
	if cur.ThroughputRPS <= bound {
		fatal(fmt.Errorf("throughput %.1f rps not above baseline %.1f rps x %.2f = %.1f rps",
			cur.ThroughputRPS, base.ThroughputRPS, factor, bound))
	}
	fmt.Printf("benchcmp: throughput %.1f rps above baseline %.1f rps x %.2f — ratio %.2f\n",
		cur.ThroughputRPS, base.ThroughputRPS, factor, cur.ThroughputRPS/base.ThroughputRPS)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}
