// Command wispsim drives the xt32 instruction-set simulator: it either
// reproduces the paper's Table 1 on the platform kernels, or assembles and
// runs an xt32 source file.
//
// Usage:
//
//	wispsim -table1 [-rsabits N] [-json]
//	wispsim -run prog.s [-entry main] [-profile]
//
// -table1 -json emits machine-readable rows so CI and the serving-layer
// tools can diff measured costs against the analytic model.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"wisp"
	"wisp/internal/asm"
	"wisp/internal/kernels"
	"wisp/internal/sim"
)

func main() {
	table1 := flag.Bool("table1", false, "measure the paper's Table 1 on the ISS")
	rsaBits := flag.Int("rsabits", 1024, "RSA modulus size for the RSA rows")
	runFile := flag.String("run", "", "assemble and run an xt32 source file")
	entry := flag.String("entry", "main", "entry label for -run")
	profile := flag.Bool("profile", false, "print the execution profile after -run")
	ext := flag.Bool("ext", false, "mount the security extension set for -run")
	dump := flag.String("dump", "", "assemble a source file and print its listing")
	jsonOut := flag.Bool("json", false, "emit -table1 rows as machine-readable JSON")
	flag.Parse()

	if *dump != "" {
		if err := doDump(*dump, *ext); err != nil {
			fatal(err)
		}
		return
	}

	switch {
	case *table1:
		if err := doTable1(*rsaBits, *jsonOut); err != nil {
			fatal(err)
		}
	case *runFile != "":
		if err := doRun(*runFile, *entry, *profile, *ext); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wispsim:", err)
	os.Exit(1)
}

func doTable1(rsaBits int, jsonOut bool) error {
	if !jsonOut {
		fmt.Printf("characterizing kernels and measuring Table 1 (RSA-%d)...\n\n", rsaBits)
	}
	p, err := wisp.New(wisp.Options{RSABits: rsaBits})
	if err != nil {
		return err
	}
	rows, err := p.Table1()
	if err != nil {
		return err
	}
	if jsonOut {
		type jsonRow struct {
			Algorithm string  `json:"algorithm"`
			Unit      string  `json:"unit"`
			Base      float64 `json:"base"`
			Optimized float64 `json:"optimized"`
			Speedup   float64 `json:"speedup"`
		}
		doc := struct {
			RSABits int       `json:"rsa_bits"`
			Rows    []jsonRow `json:"rows"`
		}{RSABits: rsaBits}
		for _, r := range rows {
			doc.Rows = append(doc.Rows, jsonRow{
				Algorithm: r.Algorithm, Unit: r.Unit,
				Base: r.Base, Optimized: r.Optimized, Speedup: r.Speedup(),
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	fmt.Print(wisp.RenderTable1(rows))
	return nil
}

// doDump assembles a file and prints an annotated listing: instruction
// index, binary encoding, and disassembly, with labels interleaved.
func doDump(path string, mountExt bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var opts asm.Options
	if mountExt {
		opts.CustOps = kernels.NewSecurityExtension().CustOps()
	}
	prog, err := asm.Assemble(string(src), opts)
	if err != nil {
		return err
	}
	// Labels by instruction index.
	labels := make(map[uint32][]string)
	for _, s := range prog.Symbols {
		if s.Kind == asm.SymText {
			labels[s.Value] = append(labels[s.Value], s.Name)
		}
	}
	for i, in := range prog.Text {
		for _, l := range labels[uint32(i)] {
			fmt.Printf("%s:\n", l)
		}
		fmt.Printf("  %5d  %08x  %s\n", i, prog.Words[i], in)
	}
	fmt.Printf("\n%d instructions, %d data bytes, %d symbols\n",
		len(prog.Text), len(prog.Data), len(prog.Symbols))
	return nil
}

func doRun(path, entry string, profile, mountExt bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var opts asm.Options
	extSet := kernels.NewSecurityExtension()
	if mountExt {
		opts.CustOps = extSet.CustOps()
	}
	prog, err := asm.Assemble(string(src), opts)
	if err != nil {
		return err
	}
	cfg := sim.DefaultConfig()
	var cpu *sim.CPU
	if mountExt {
		cpu, err = sim.New(prog, cfg, extSet)
	} else {
		cpu, err = sim.New(prog, cfg, nil)
	}
	if err != nil {
		return err
	}
	if _, err := prog.Entry(entry); err != nil {
		return err
	}
	ret, cycles, err := cpu.Call(entry)
	if err != nil {
		return err
	}
	fmt.Printf("%s: returned %d (a2) in %d cycles (%.3f µs at 188 MHz)\n",
		entry, ret, cycles, cpu.Seconds(cycles)*1e6)
	if profile {
		fmt.Println()
		fmt.Print(cpu.Profile().Dump())
	}
	return nil
}
