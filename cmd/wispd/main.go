// Command wispd is the security-offload daemon: it serves SSL-transaction
// and raw-primitive requests over HTTP, dispatching them across a
// shard-per-worker pool of simulated platform instances with bounded
// queues, record-layer batching, load-shedding and deadline-aware
// rejection.  SIGINT/SIGTERM triggers a graceful drain: queued requests
// finish, new ones are shed, then the process exits.
//
// Usage:
//
//	wispd [-addr 127.0.0.1:9311] [-listen-wire ""] [-shards N] [-queue 64]
//	      [-batch 16] [-dispatch cost|rr] [-rsabits 512] [-record 1024]
//	      [-seed 1] [-session-cache 4096] [-session-ttl 10m] [-pace-hz 0]
//	      [-client-rate 0] [-client-burst 0] [-fair-limit 0] [-qos-quantum 0]
//	      [-govern] [-govern-tick 500ms] [-govern-explore=true]
//	      [-read-timeout 0] [-measured] [-metrics] [-pprof] [-addrfile PATH]
//
// -listen-wire opens a second listener speaking the binary wire protocol
// (internal/wire) alongside HTTP; both front the same gateway.  -pace-hz
// enables model-paced serving: each shard stretches SSL-shaped service
// times to the analytic cycle estimate at the given clock (188e6 = the
// paper's 188 MHz platform), which makes multi-node scaling experiments
// honest on hosts with fewer cores than daemons.
// -client-rate enables per-client QoS isolation: each ClientID's
// estimated-cost spend (µs of predicted service time per second) is
// metered against a token bucket, and under saturation clients are
// fair-queued with deficit round-robin ahead of shard dispatch.
// -read-timeout bounds how long a connection may dribble one request
// (the slow-loris defense).
//
// With -measured the daemon characterizes the platform kernels on the ISS
// at startup (Platform.SSLCosts) and prices transactions with those
// numbers; otherwise it uses the baked-in measured defaults.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"wisp"
	"wisp/internal/explore"
	"wisp/internal/governor"
	"wisp/internal/mpz"
	"wisp/internal/replica"
	"wisp/internal/rsakey"
	"wisp/internal/serve"
	"wisp/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9311", "listen address (port 0 picks a free port)")
	listenWire := flag.String("listen-wire", "", "binary wire-protocol listen address (empty = HTTP only; port 0 picks a free port)")
	wireAddrFile := flag.String("wire-addrfile", "", "write the bound wire address to this file (for scripts)")
	shards := flag.Int("shards", 0, "worker shards (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "per-shard queue depth")
	batch := flag.Int("batch", 16, "max requests drained per shard cycle")
	batchWidth := flag.Int("batch-width", 0, "RSA ops folded into one batched engine call per drain (0 = default 4; 1 = scalar)")
	batchGather := flag.Int64("batch-gather-us", 0, "micro-batching window in µs: how long a shard waits to top an under-width RSA batch up before serving it (0 = no wait)")
	dispatch := flag.String("dispatch", serve.DispatchCost,
		"admission policy: cost (power-of-two-choices over per-op backlog estimates, with work stealing) or rr (blind round-robin)")
	rsaBits := flag.Int("rsabits", 512, "gateway handshake key size")
	record := flag.Int("record", 1024, "default record size for SSL transactions")
	seed := flag.Int64("seed", 1, "determinism seed for shard key material")
	sessionCap := flag.Int("session-cache", 4096, "SSL session cache capacity (abbreviated handshakes); negative disables resumption")
	sessionTTL := flag.Duration("session-ttl", 10*time.Minute, "SSL session cache entry lifetime")
	paceHz := flag.Float64("pace-hz", 0, "model-paced serving clock in Hz (188e6 = one 188 MHz platform per shard; 0 = serve at host speed)")
	clientRate := flag.Int64("client-rate", 0, "per-client QoS rate in estimated-cost µs per second (0 = QoS off)")
	clientBurst := flag.Int64("client-burst", 0, "per-client QoS burst in estimated-cost µs (0 = 2x rate)")
	fairLimit := flag.Int64("fair-limit", 0, "outstanding dispatched cost (µs) above which clients are DRR fair-queued (0 = shards x 250ms)")
	qosQuantum := flag.Int64("qos-quantum", 0, "DRR quantum in estimated-cost µs (0 = 10ms)")
	maxCost := flag.Int64("max-cost", 0, "per-request estimated-cost ceiling in µs; dearer requests are throttled (0 = no cap)")
	peersFlag := flag.String("peers", "", "comma-separated wire addresses of ring peers for session-secret replication (@FILE reads the address from FILE at dial time; empty = replication off)")
	replicaR := flag.Int("replica-r", 2, "session replication factor: copies of each session secret pushed to ring peers")
	readTimeout := flag.Duration("read-timeout", 0, "max time a connection may take to deliver one full request (slow-loris defense; 0 = unbounded)")
	govern := flag.Bool("govern", false, "run the adaptive performance governor (batch width/gather and engine re-selection from live telemetry)")
	governTick := flag.Duration("govern-tick", 500*time.Millisecond, "governor control period")
	governExplore := flag.Bool("govern-explore", true, "let the governor re-select the RSA engine configuration via the macro-model explorer (requires ISS characterization in the background)")
	measured := flag.Bool("measured", false, "derive the analytic cost model on the ISS at startup")
	metrics := flag.Bool("metrics", false, "print the text metrics dump on shutdown")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ for allocation and CPU profiling")
	addrFile := flag.String("addrfile", "", "write the bound address to this file (for scripts)")
	drainTimeout := flag.Duration("drain", 30*time.Second, "graceful drain budget on shutdown")
	flag.Parse()

	cfg := serve.Config{
		Shards:        *shards,
		QueueDepth:    *queue,
		BatchMax:      *batch,
		BatchWidth:    *batchWidth,
		BatchGatherUS: *batchGather,
		RSABits:       *rsaBits,
		RecordSize:    *record,
		Dispatch:      *dispatch,
		Seed:          *seed,
		SessionCap:    *sessionCap,
		SessionTTL:    *sessionTTL,
		PaceHz:        *paceHz,

		ClientRateUS:  *clientRate,
		ClientBurstUS: *clientBurst,
		FairLimitUS:   *fairLimit,
		DRRQuantumUS:  *qosQuantum,
		MaxCostUS:     *maxCost,
	}
	if *measured {
		fmt.Println("wispd: characterizing platform kernels on the ISS...")
		p, err := wisp.New(wisp.Options{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		base, opt, err := p.SSLCosts()
		if err != nil {
			fatal(err)
		}
		cfg.BaseCosts, cfg.OptCosts = &base, &opt
	}

	gw, err := serve.NewGateway(cfg)
	if err != nil {
		fatal(err)
	}

	// Session-secret replication: push every full-handshake secret to R
	// ring peers in the background, pull unknown offered sessions back on
	// demand, so abbreviated handshakes survive the loss of the node that
	// established them.  Peer addresses resolve at dial time (@FILE reads
	// the address another node's -wire-addrfile wrote), so a cluster can
	// boot all nodes concurrently without an address bootstrap order.
	var rep *replica.Replicator
	if *peersFlag != "" {
		var peers []string
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		if len(peers) > 0 {
			rep = replica.New(replica.Config{Peers: peers, R: *replicaR, Dial: dialPeer})
			view := func() *serve.ReplicationView {
				s := rep.Stats()
				return &serve.ReplicationView{
					Peers:      len(peers),
					Replicated: s.Replicated,
					Dropped:    s.Dropped,
					Fetched:    s.Fetched,
					FetchMiss:  s.FetchMiss,
				}
			}
			if !gw.SetSessionReplication(rep.Offer, rep.Fetch, view) {
				fatal(fmt.Errorf("-peers needs session resumption; do not disable -session-cache"))
			}
			fmt.Printf("wispd: session replication to %d peers (R=%d)\n", len(peers), *replicaR)
		}
	}

	// Adaptive governor: a control loop over windowed /stats deltas that
	// retunes the batch width/gather window and (with -govern-explore)
	// re-selects the shard RSA engine as the live workload mix shifts.
	var gov *governor.Governor
	if *govern {
		logf := func(format string, args ...any) {
			fmt.Printf("wispd: governor: "+format+"\n", args...)
		}
		gcfg := governor.Config{
			Tick:     *governTick,
			Snapshot: func() serve.Stats { return gw.Stats() },
			Tuner:    gw,
			Logf:     logf,
		}
		if *governExplore {
			gcfg.Scorer = buildScorer(*seed, *rsaBits, logf)
		}
		gov = governor.New(gcfg)
		gw.SetGovernorView(gov.View)
		go gov.Run()
		fmt.Printf("wispd: governor on — tick %s, explore %v\n", *governTick, *governExplore)
	}

	srv := serve.NewServer(gw)
	if *pprofFlag {
		srv.EnablePprof()
	}
	if *readTimeout > 0 {
		srv.SetReadTimeout(*readTimeout)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound.String()), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wispd: listening on %s (%d shards, queue %d, batch %d, RSA-%d, dispatch %s)\n",
		bound, gw.Config().Shards, gw.Config().QueueDepth, gw.Config().BatchMax, gw.Config().RSABits, gw.Config().Dispatch)
	if qc := gw.Config(); qc.ClientRateUS > 0 {
		fmt.Printf("wispd: QoS on — %dµs/s per client (burst %dµs), fair-queue above %dµs outstanding (quantum %dµs)\n",
			qc.ClientRateUS, qc.ClientBurstUS, qc.FairLimitUS, qc.DRRQuantumUS)
	}
	if *paceHz > 0 {
		fmt.Printf("wispd: model-paced at %.0f Hz — each shard serves like one platform instance\n", *paceHz)
	}

	var wireSrv *wire.Server
	wireErr := make(chan error, 1)
	if *listenWire != "" {
		wireSrv = wire.NewServer(gw, wire.ServerConfig{ReadTimeout: *readTimeout})
		wireBound, err := wireSrv.Listen(*listenWire)
		if err != nil {
			fatal(err)
		}
		if *wireAddrFile != "" {
			if err := os.WriteFile(*wireAddrFile, []byte(wireBound.String()), 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wispd: wire protocol on %s\n", wireBound)
		go func() { wireErr <- wireSrv.Serve() }()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	select {
	case err := <-serveErr:
		if err != nil {
			fatal(err)
		}
	case err := <-wireErr:
		if err != nil {
			fatal(err)
		}
	case s := <-sig:
		fmt.Printf("wispd: %v — draining...\n", s)
		if gov != nil {
			gov.Stop() // freeze the knobs before the drain starts
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := srv.Shutdown(ctx) // drains the gateway, so wire requests finish too
		cancel()
		if wireSrv != nil {
			if werr := wireSrv.Close(); werr != nil && err == nil {
				err = werr
			}
		}
		if rep != nil {
			rep.Close() // flush queued session pushes before exiting
		}
		if err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		stats := gw.Stats()
		fmt.Printf("wispd: drained cleanly (%d served, %d shed, %d expired)\n",
			stats.OK, stats.Shed, stats.Expired)
		if r := stats.Replication; r != nil {
			fmt.Printf("wispd: replication — %d pushed, %d dropped, %d fetched, %d fetch misses\n",
				r.Replicated, r.Dropped, r.Fetched, r.FetchMiss)
		}
		if *metrics {
			fmt.Print(stats.Text())
		}
	}
}

// buildScorer wires the governor's re-selection path to the macro-model
// exploration.  The ISS characterization and the first full pricing of
// the serving space run in the background (tens of seconds of native
// trace work); until they finish the scorer answers "warming up" and the
// governor simply keeps ticking the width/gather controls.  Once warm,
// every re-score is served from the explorer's memoized price cache.
func buildScorer(seed int64, rsaBits int, logf func(string, ...any)) func(float64, serve.EngineConfig) ([]governor.Candidate, error) {
	space := explore.ServingSpace()
	var ex atomic.Pointer[explore.Explorer]
	go func() {
		p, err := wisp.New(wisp.Options{Seed: seed})
		if err != nil {
			logf("explorer unavailable: %v", err)
			return
		}
		key, err := rsakey.GenerateKey(rand.New(rand.NewSource(seed)), rsaBits)
		if err != nil {
			logf("explorer unavailable: %v", err)
			return
		}
		e := explore.New(p.BaseModels, key, seed)
		// Warm the price cache for the whole serving space off the control
		// loop, so the first real re-score is a pile of map lookups.
		cur := engineToExplore(serve.EngineConfig{Exp: rsakey.DefaultExpConfig, CRT: rsakey.CRTGarner})
		if _, err := e.ReScoreMix(explore.MixFingerprint{RSATimeShare: 1}, cur, space); err != nil {
			logf("explorer unavailable: %v", err)
			return
		}
		ex.Store(e)
		logf("explorer ready (%d serving candidates priced)", len(space))
	}()
	return func(share float64, cur serve.EngineConfig) ([]governor.Candidate, error) {
		e := ex.Load()
		if e == nil {
			return nil, nil // still characterizing
		}
		res, err := e.ReScoreMix(explore.MixFingerprint{RSATimeShare: share}, engineToExplore(cur), space)
		if err != nil {
			return nil, err
		}
		cands := make([]governor.Candidate, len(res))
		for i, r := range res {
			cands[i] = governor.Candidate{
				Name:          r.Config.String(),
				Engine:        exploreToEngine(r.Config),
				DecryptCycles: r.EstCycles,
				MixImprove:    r.MixImprove,
			}
		}
		return cands, nil
	}
}

// engineToExplore / exploreToEngine map between the gateway's runtime
// engine configuration and the explorer's candidate coordinates.  The
// serving space is radix-32 only, so the mapping is lossless both ways.
func engineToExplore(ec serve.EngineConfig) explore.Config {
	return explore.Config{ModMul: ec.Exp.Alg, Window: ec.Exp.WindowBits, CRT: ec.CRT, Radix: 32, Cache: ec.Exp.Cache}
}

func exploreToEngine(c explore.Config) serve.EngineConfig {
	return serve.EngineConfig{
		Exp: mpz.ExpConfig{Alg: c.ModMul, WindowBits: c.Window, Cache: c.Cache},
		CRT: c.CRT,
	}
}

// dialPeer opens a replication connection, resolving @FILE peer entries
// to the address in FILE at dial time — re-read on every redial, so a
// peer that restarts on a new port is found again.
func dialPeer(addr string) (replica.Conn, error) {
	if strings.HasPrefix(addr, "@") {
		b, err := os.ReadFile(addr[1:])
		if err != nil {
			return nil, fmt.Errorf("resolving peer %s: %w", addr, err)
		}
		resolved := strings.TrimSpace(string(b))
		if resolved == "" {
			return nil, fmt.Errorf("peer file %s is empty", addr[1:])
		}
		addr = resolved
	}
	return wire.Dial(addr)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wispd:", err)
	os.Exit(1)
}
