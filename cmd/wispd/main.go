// Command wispd is the security-offload daemon: it serves SSL-transaction
// and raw-primitive requests over HTTP, dispatching them across a
// shard-per-worker pool of simulated platform instances with bounded
// queues, record-layer batching, load-shedding and deadline-aware
// rejection.  SIGINT/SIGTERM triggers a graceful drain: queued requests
// finish, new ones are shed, then the process exits.
//
// Usage:
//
//	wispd [-addr 127.0.0.1:9311] [-shards N] [-queue 64] [-batch 16]
//	      [-dispatch cost|rr] [-rsabits 512] [-record 1024] [-seed 1]
//	      [-session-cache 4096] [-session-ttl 10m]
//	      [-measured] [-metrics] [-pprof] [-addrfile PATH]
//
// With -measured the daemon characterizes the platform kernels on the ISS
// at startup (Platform.SSLCosts) and prices transactions with those
// numbers; otherwise it uses the baked-in measured defaults.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wisp"
	"wisp/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9311", "listen address (port 0 picks a free port)")
	shards := flag.Int("shards", 0, "worker shards (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "per-shard queue depth")
	batch := flag.Int("batch", 16, "max requests drained per shard cycle")
	dispatch := flag.String("dispatch", serve.DispatchCost,
		"admission policy: cost (power-of-two-choices over per-op backlog estimates, with work stealing) or rr (blind round-robin)")
	rsaBits := flag.Int("rsabits", 512, "gateway handshake key size")
	record := flag.Int("record", 1024, "default record size for SSL transactions")
	seed := flag.Int64("seed", 1, "determinism seed for shard key material")
	sessionCap := flag.Int("session-cache", 4096, "SSL session cache capacity (abbreviated handshakes); negative disables resumption")
	sessionTTL := flag.Duration("session-ttl", 10*time.Minute, "SSL session cache entry lifetime")
	measured := flag.Bool("measured", false, "derive the analytic cost model on the ISS at startup")
	metrics := flag.Bool("metrics", false, "print the text metrics dump on shutdown")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ for allocation and CPU profiling")
	addrFile := flag.String("addrfile", "", "write the bound address to this file (for scripts)")
	drainTimeout := flag.Duration("drain", 30*time.Second, "graceful drain budget on shutdown")
	flag.Parse()

	cfg := serve.Config{
		Shards:     *shards,
		QueueDepth: *queue,
		BatchMax:   *batch,
		RSABits:    *rsaBits,
		RecordSize: *record,
		Dispatch:   *dispatch,
		Seed:       *seed,
		SessionCap: *sessionCap,
		SessionTTL: *sessionTTL,
	}
	if *measured {
		fmt.Println("wispd: characterizing platform kernels on the ISS...")
		p, err := wisp.New(wisp.Options{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		base, opt, err := p.SSLCosts()
		if err != nil {
			fatal(err)
		}
		cfg.BaseCosts, cfg.OptCosts = &base, &opt
	}

	gw, err := serve.NewGateway(cfg)
	if err != nil {
		fatal(err)
	}
	srv := serve.NewServer(gw)
	if *pprofFlag {
		srv.EnablePprof()
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound.String()), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wispd: listening on %s (%d shards, queue %d, batch %d, RSA-%d, dispatch %s)\n",
		bound, gw.Config().Shards, gw.Config().QueueDepth, gw.Config().BatchMax, gw.Config().RSABits, gw.Config().Dispatch)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	select {
	case err := <-serveErr:
		if err != nil {
			fatal(err)
		}
	case s := <-sig:
		fmt.Printf("wispd: %v — draining...\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		stats := gw.Stats()
		fmt.Printf("wispd: drained cleanly (%d served, %d shed, %d expired)\n",
			stats.OK, stats.Shed, stats.Expired)
		if *metrics {
			fmt.Print(stats.Text())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wispd:", err)
	os.Exit(1)
}
