// Command wispgap reproduces Figure 1: the security processing gap between
// projected wireless security workloads and embedded processor
// performance across silicon technology nodes.
//
// Usage:
//
//	wispgap [-measured]
package main

import (
	"flag"
	"fmt"
	"os"

	"wisp"
	"wisp/internal/gap"
)

func main() {
	measured := flag.Bool("measured", false, "use the platform's measured 3DES cost instead of the default model")
	flag.Parse()

	fmt.Println("Figure 1 — the security processing gap")
	if *measured {
		p, err := wisp.New(wisp.Options{})
		if err != nil {
			fatal(err)
		}
		out, err := p.Figure1()
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}
	fmt.Print(gap.Render(gap.Figure1(gap.Default3DES)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wispgap:", err)
	os.Exit(1)
}
