// Command wispselect runs the custom-instruction formulation and global
// selection phases: it measures the A-D curves of the multi-precision leaf
// routines on the ISS (Figure 5), shows the Cartesian-product reduction
// (Figure 6), and selects the best instruction combination under an area
// budget (§3.4).
//
// Usage:
//
//	wispselect [-n 16] [-budget 12000]
package main

import (
	"flag"
	"fmt"
	"os"

	"wisp"
	"wisp/internal/instrsel"
)

func main() {
	n := flag.Int("n", 16, "operand size in limbs for the kernel curves")
	budget := flag.Float64("budget", 12000, "area budget in gate equivalents")
	flag.Parse()

	p, err := wisp.New(wisp.Options{})
	if err != nil {
		fatal(err)
	}
	f5, err := p.Figure5(*n)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("Figure 5(a) — mpn_add_n A-D curve (n=%d limbs):\n%s\n", *n, f5.AddN)
	fmt.Printf("Figure 5(b) — mpn_addmul_1 A-D curve:\n%s\n", f5.AddMul)
	fmt.Printf("Figure 5(c) — composite root curve (%d points after Pareto, %d before):\n%s\n",
		len(f5.Root), len(f5.RootAll), f5.Root)

	raw, reduced, err := p.Figure6(*n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Figure 6 — Cartesian product reduction: %d -> %d design points\n\n", raw, reduced)

	sel, err := instrsel.MinCycles(f5.Root, *budget)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("global selection under %.0f-gate budget:\n  %v\n", *budget, sel)

	fmt.Println("\nbudget sweep:")
	for _, s := range instrsel.Sweep(f5.Root, []float64{0, 2000, 4000, 8000, 16000, 1e9}) {
		fmt.Printf("  area ≤ %8.0f: %s (%.0f cycles, %.2f×)\n",
			s.Point.Area(), s.Point.Set.Key(), s.Point.Cycles, s.Speedup())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wispselect:", err)
	os.Exit(1)
}
