// Command wispselect runs the custom-instruction formulation and global
// selection phases: it measures the A-D curves of the multi-precision leaf
// routines on the ISS (Figure 5) across a bounded worker pool, shows the
// Cartesian-product reduction (Figure 6), and selects the best instruction
// combination under an area budget (§3.4).
//
// Usage:
//
//	wispselect [-n 16] [-budget 12000] [-workers N] [-compare]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wisp"
	"wisp/internal/instrsel"
	"wisp/internal/pool"
)

func main() {
	n := flag.Int("n", 16, "operand size in limbs for the kernel curves")
	budget := flag.Float64("budget", 12000, "area budget in gate equivalents")
	workers := flag.Int("workers", 0, "worker pool size for curve formulation (0 = GOMAXPROCS)")
	compare := flag.Bool("compare", false, "also run the sequential formulation and report the parallel speedup")
	flag.Parse()

	p, err := wisp.New(wisp.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "formulating A-D curves on %d workers...\n", pool.Workers(*workers, 0))
	start := time.Now()
	f5, err := p.Figure5Parallel(*n, *workers)
	if err != nil {
		fatal(err)
	}
	parTime := time.Since(start)
	fmt.Fprintf(os.Stderr, "curve formulation: %v\n", parTime)

	if *compare {
		seqStart := time.Now()
		seq, err := p.Figure5Parallel(*n, 1)
		if err != nil {
			fatal(err)
		}
		seqTime := time.Since(seqStart)
		if seq.Root.String() != f5.Root.String() {
			fatal(fmt.Errorf("sequential root curve disagrees with parallel"))
		}
		fmt.Fprintf(os.Stderr, "sequential formulation: %v — parallel speedup %.2f×\n",
			seqTime, seqTime.Seconds()/parTime.Seconds())
	}

	fmt.Printf("Figure 5(a) — mpn_add_n A-D curve (n=%d limbs):\n%s\n", *n, f5.AddN)
	fmt.Printf("Figure 5(b) — mpn_addmul_1 A-D curve:\n%s\n", f5.AddMul)
	fmt.Printf("Figure 5(c) — composite root curve (%d points after Pareto, %d before):\n%s\n",
		len(f5.Root), len(f5.RootAll), f5.Root)

	raw, reduced, err := p.Figure6(*n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Figure 6 — Cartesian product reduction: %d -> %d design points\n\n", raw, reduced)

	sel, err := instrsel.MinCycles(f5.Root, *budget)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("global selection under %.0f-gate budget:\n  %v\n", *budget, sel)

	fmt.Println("\nbudget sweep:")
	for _, s := range instrsel.SweepParallel(f5.Root, []float64{0, 2000, 4000, 8000, 16000, 1e9}, *workers) {
		fmt.Printf("  area ≤ %8.0f: %s (%.0f cycles, %.2f×)\n",
			s.Point.Area(), s.Point.Set.Key(), s.Point.Cycles, s.Speedup())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wispselect:", err)
	os.Exit(1)
}
