// Command wispexplore runs the algorithm design-space exploration of §4.3:
// it prices all 450 modular-exponentiation candidates with ISS-derived
// performance macro-models, optionally replays a sample on the ISS for
// ground truth, and can print the Figure 4 call graph of the winning
// configuration.
//
// Usage:
//
//	wispexplore [-bits 512] [-top 10] [-replay 3] [-callgraph]
package main

import (
	"flag"
	"fmt"
	"os"

	"wisp"
)

func main() {
	bits := flag.Int("bits", 512, "RSA modulus size for the exploration workload")
	top := flag.Int("top", 10, "show the best N candidates")
	replay := flag.Int("replay", 3, "candidates to replay on the ISS for ground truth")
	sampleCap := flag.Int("samplecap", 2, "max ISS executions per trace bucket during replay")
	callGraph := flag.Bool("callgraph", false, "print the Figure 4 call graph")
	flag.Parse()

	p, err := wisp.New(wisp.Options{RSABits: *bits})
	if err != nil {
		fatal(err)
	}

	if *callGraph {
		g, err := p.Figure4()
		if err != nil {
			fatal(err)
		}
		fmt.Println("Figure 4 — annotated call graph of optimized modular exponentiation:")
		fmt.Print(g.Dump())
		fmt.Println()
	}

	fmt.Printf("exploring 450 candidates on an RSA-%d decryption workload...\n", *bits)
	rep, err := p.Section43(*bits, *replay, *sampleCap)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%d candidates priced in %v (%.2f ms/candidate)\n",
		rep.Candidates, rep.EstimateTime,
		rep.EstimateTime.Seconds()*1000/float64(rep.Candidates))
	fmt.Printf("best:  %v  (%.0f cycles)\n", rep.Best.Config, rep.Best.EstCycles)
	fmt.Printf("worst: %v  (%.0f cycles, %.1f× slower)\n",
		rep.Worst.Config, rep.Worst.EstCycles, rep.Worst.EstCycles/rep.Best.EstCycles)
	if rep.ReplayCount > 0 {
		fmt.Printf("\nISS ground truth (%d candidates replayed):\n", rep.ReplayCount)
		fmt.Printf("  macro-model mean abs. error: %.2f%%\n", rep.MeanAbsErrPct)
		fmt.Printf("  estimation speedup over full ISS evaluation: %.0f×\n", rep.SpeedRatio)
	}
	_ = top
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wispexplore:", err)
	os.Exit(1)
}
