// Command wispexplore runs the algorithm design-space exploration of §4.3:
// it prices all 450 modular-exponentiation candidates with ISS-derived
// performance macro-models — fanned out across a bounded worker pool —
// optionally replays a sample on the ISS for ground truth, and can print
// the Figure 4 call graph of the winning configuration.
//
// Usage:
//
//	wispexplore [-bits 512] [-top 10] [-replay 3] [-callgraph]
//	            [-workers N] [-compare] [-quiet]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"wisp"
	"wisp/internal/explore"
)

func main() {
	bits := flag.Int("bits", 512, "RSA modulus size for the exploration workload")
	top := flag.Int("top", 10, "show the best N candidates")
	replay := flag.Int("replay", 3, "candidates to replay on the ISS for ground truth")
	sampleCap := flag.Int("samplecap", 2, "max ISS executions per trace bucket during replay")
	callGraph := flag.Bool("callgraph", false, "print the Figure 4 call graph")
	workers := flag.Int("workers", 0, "worker pool size for candidate evaluation (0 = GOMAXPROCS)")
	compare := flag.Bool("compare", false, "also run the sequential pass and report the parallel speedup")
	quiet := flag.Bool("quiet", false, "suppress progress reporting on stderr")
	flag.Parse()

	p, err := wisp.New(wisp.Options{RSABits: *bits})
	if err != nil {
		fatal(err)
	}

	if *callGraph {
		g, err := p.Figure4()
		if err != nil {
			fatal(err)
		}
		fmt.Println("Figure 4 — annotated call graph of optimized modular exponentiation:")
		fmt.Print(g.Dump())
		fmt.Println()
	}

	var progress explore.ProgressFunc
	if !*quiet {
		var last atomic.Int64
		progress = func(done, total int) {
			// Throttle to ~5% steps; progress is called from workers.
			step := int64(done * 20 / total)
			if prev := last.Load(); step > prev && last.CompareAndSwap(prev, step) {
				fmt.Fprintf(os.Stderr, "\rexploring... %d/%d candidates (%d%%)", done, total, done*100/total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	fmt.Printf("exploring 450 candidates on an RSA-%d decryption workload...\n", *bits)
	rep, err := p.Section43Parallel(*bits, *replay, *sampleCap, *workers, progress)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%d candidates priced in %v on %d workers (%.2f ms/candidate)\n",
		rep.Candidates, rep.EstimateTime, rep.Workers,
		rep.EstimateTime.Seconds()*1000/float64(rep.Candidates))
	fmt.Printf("pricing memo: %v\n", rep.PriceCache)

	if *compare {
		seqStart := time.Now()
		seqRep, err := p.Section43Parallel(*bits, 0, *sampleCap, 1, nil)
		if err != nil {
			fatal(err)
		}
		seqTime := time.Since(seqStart)
		if seqRep.Best.Config != rep.Best.Config {
			fatal(fmt.Errorf("sequential best %v disagrees with parallel best %v",
				seqRep.Best.Config, rep.Best.Config))
		}
		fmt.Printf("sequential pass: %v — parallel speedup %.2f× at %d workers\n",
			seqTime, seqTime.Seconds()/rep.EstimateTime.Seconds(), rep.Workers)
	}

	if *top > 0 {
		n := *top
		if n > len(rep.Results) {
			n = len(rep.Results)
		}
		fmt.Printf("\ntop %d candidates:\n", n)
		for i, r := range rep.Results[:n] {
			fmt.Printf("  %2d. %-45v %12.0f cycles\n", i+1, r.Config, r.EstCycles)
		}
	}

	fmt.Printf("\nbest:  %v  (%.0f cycles)\n", rep.Best.Config, rep.Best.EstCycles)
	fmt.Printf("worst: %v  (%.0f cycles, %.1f× slower)\n",
		rep.Worst.Config, rep.Worst.EstCycles, rep.Worst.EstCycles/rep.Best.EstCycles)
	if rep.ReplayCount > 0 {
		fmt.Printf("\nISS ground truth (%d candidates replayed):\n", rep.ReplayCount)
		fmt.Printf("  macro-model mean abs. error: %.2f%%\n", rep.MeanAbsErrPct)
		fmt.Printf("  estimation speedup over full ISS evaluation: %.0f×\n", rep.SpeedRatio)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wispexplore:", err)
	os.Exit(1)
}
