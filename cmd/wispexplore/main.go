// Command wispexplore runs the algorithm design-space exploration of §4.3:
// it prices all 450 modular-exponentiation candidates with ISS-derived
// performance macro-models — fanned out across a bounded worker pool —
// optionally replays a sample on the ISS for ground truth, and can print
// the Figure 4 call graph of the winning configuration.
//
// Usage:
//
//	wispexplore [-bits 512] [-top 10] [-replay 3] [-callgraph]
//	            [-workers N] [-compare] [-quiet]
//	wispexplore -batch [-batch-widths 1,2,4,8] [-bits 512]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"wisp"
	"wisp/internal/explore"
	"wisp/internal/macromodel"
)

func main() {
	bits := flag.Int("bits", 512, "RSA modulus size for the exploration workload")
	top := flag.Int("top", 10, "show the best N candidates")
	replay := flag.Int("replay", 3, "candidates to replay on the ISS for ground truth")
	sampleCap := flag.Int("samplecap", 2, "max ISS executions per trace bucket during replay")
	callGraph := flag.Bool("callgraph", false, "print the Figure 4 call graph")
	workers := flag.Int("workers", 0, "worker pool size for candidate evaluation (0 = GOMAXPROCS)")
	compare := flag.Bool("compare", false, "also run the sequential pass and report the parallel speedup")
	quiet := flag.Bool("quiet", false, "suppress progress reporting on stderr")
	batch := flag.Bool("batch", false, "explore batch width as a hardware axis and print the area-delay frontier")
	batchWidths := flag.String("batch-widths", "1,2,4,8", "comma-separated lane counts for -batch")
	flag.Parse()

	p, err := wisp.New(wisp.Options{RSABits: *bits})
	if err != nil {
		fatal(err)
	}

	if *batch {
		widths, err := parseWidths(*batchWidths)
		if err != nil {
			fatal(err)
		}
		runBatchFrontier(p, widths, *bits)
		return
	}

	if *callGraph {
		g, err := p.Figure4()
		if err != nil {
			fatal(err)
		}
		fmt.Println("Figure 4 — annotated call graph of optimized modular exponentiation:")
		fmt.Print(g.Dump())
		fmt.Println()
	}

	var progress explore.ProgressFunc
	if !*quiet {
		var last atomic.Int64
		progress = func(done, total int) {
			// Throttle to ~5% steps; progress is called from workers.
			step := int64(done * 20 / total)
			if prev := last.Load(); step > prev && last.CompareAndSwap(prev, step) {
				fmt.Fprintf(os.Stderr, "\rexploring... %d/%d candidates (%d%%)", done, total, done*100/total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	fmt.Printf("exploring 450 candidates on an RSA-%d decryption workload...\n", *bits)
	rep, err := p.Section43Parallel(*bits, *replay, *sampleCap, *workers, progress)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%d candidates priced in %v on %d workers (%.2f ms/candidate)\n",
		rep.Candidates, rep.EstimateTime, rep.Workers,
		rep.EstimateTime.Seconds()*1000/float64(rep.Candidates))
	fmt.Printf("pricing memo: %v\n", rep.PriceCache)

	if *compare {
		seqStart := time.Now()
		seqRep, err := p.Section43Parallel(*bits, 0, *sampleCap, 1, nil)
		if err != nil {
			fatal(err)
		}
		seqTime := time.Since(seqStart)
		if seqRep.Best.Config != rep.Best.Config {
			fatal(fmt.Errorf("sequential best %v disagrees with parallel best %v",
				seqRep.Best.Config, rep.Best.Config))
		}
		fmt.Printf("sequential pass: %v — parallel speedup %.2f× at %d workers\n",
			seqTime, seqTime.Seconds()/rep.EstimateTime.Seconds(), rep.Workers)
	}

	if *top > 0 {
		n := *top
		if n > len(rep.Results) {
			n = len(rep.Results)
		}
		fmt.Printf("\ntop %d candidates:\n", n)
		for i, r := range rep.Results[:n] {
			fmt.Printf("  %2d. %-45v %12.0f cycles\n", i+1, r.Config, r.EstCycles)
		}
	}

	fmt.Printf("\nbest:  %v  (%.0f cycles)\n", rep.Best.Config, rep.Best.EstCycles)
	fmt.Printf("worst: %v  (%.0f cycles, %.1f× slower)\n",
		rep.Worst.Config, rep.Worst.EstCycles, rep.Worst.EstCycles/rep.Best.EstCycles)
	if rep.ReplayCount > 0 {
		fmt.Printf("\nISS ground truth (%d candidates replayed):\n", rep.ReplayCount)
		fmt.Printf("  macro-model mean abs. error: %.2f%%\n", rep.MeanAbsErrPct)
		fmt.Printf("  estimation speedup over full ISS evaluation: %.0f×\n", rep.SpeedRatio)
	}
}

func parseWidths(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		k, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad batch width %q: %w", f, err)
		}
		out = append(out, k)
	}
	return out, nil
}

// runBatchFrontier prints the batch-width area-delay frontier: one
// design point per lane count, the Pareto survivors, and the selection
// each area budget admits.
func runBatchFrontier(p *wisp.Platform, widths []int, bits int) {
	fmt.Printf("exploring batch width on an RSA-%d decryption workload (serial fraction %.2f)...\n\n",
		bits, macromodel.DefaultLaneSerialFrac)
	rep, err := p.BatchFrontier(widths, bits)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-6s %14s %14s %9s %12s %s\n",
		"width", "cycles/op", "cycles/batch", "speedup", "area(gates)", "frontier")
	for _, pt := range rep.Points {
		mark := ""
		if pt.OnFrontier {
			mark = "*"
		}
		fmt.Printf("%-6d %14.0f %14.0f %8.2fx %12.0f %8s\n",
			pt.Width, pt.CyclesPerLane, pt.TotalCycles, pt.Speedup, pt.AreaGates, mark)
	}
	fmt.Printf("\n%d of %d widths survive Pareto reduction\n", len(rep.Frontier), len(rep.Points))
	fmt.Println("\nselection per area budget:")
	for _, sel := range rep.Selections {
		fmt.Printf("  %s\n", sel)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wispexplore:", err)
	os.Exit(1)
}
