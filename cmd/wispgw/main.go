// Command wispgw is the cluster routing tier: it fronts N wispd backends
// (their -listen-wire ports) behind one serving address, giving
// resumption traffic consistent-hash session affinity, spreading fresh
// handshakes with power-of-two-choices over per-node backlog-cost EWMAs
// (fed by the load figure piggybacked on every wire response), ejecting
// failing backends and retrying around them.
//
// It serves both protocols a single wispd serves — the binary wire
// protocol on -listen-wire and HTTP on -addr — so clients cannot tell a
// routing tier from one node.
//
// Usage:
//
//	wispgw -backends host:p1,host:p2,... [-addr 127.0.0.1:9411]
//	       [-listen-wire 127.0.0.1:9412] [-replicas 64] [-max-inflight 128]
//	       [-eject-after 2] [-eject-for 2s] [-node-retries -1] [-seed 1]
//	       [-coroute-rsa=true] [-coroute-factor 2.0]
//	       [-metrics] [-addrfile PATH] [-wire-addrfile PATH] [-drain 30s]
//
// SIGINT/SIGTERM drains: new requests are refused with reason "draining"
// while in-flight ones finish on their backends, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wisp/internal/gwroute"
	"wisp/internal/serve"
	"wisp/internal/wire"
)

func main() {
	backends := flag.String("backends", "", "comma-separated wispd wire addresses (required)")
	addr := flag.String("addr", "127.0.0.1:9411", "HTTP listen address (port 0 picks a free port)")
	listenWire := flag.String("listen-wire", "127.0.0.1:9412", "binary wire-protocol listen address (empty = HTTP only; port 0 picks a free port)")
	replicas := flag.Int("replicas", 64, "virtual nodes per backend on the consistent-hash ring")
	maxInflight := flag.Int64("max-inflight", 128, "max concurrently-routed requests per backend")
	ejectAfter := flag.Int("eject-after", 2, "consecutive transport failures before a backend is ejected")
	ejectFor := flag.Duration("eject-for", 2*time.Second, "quarantine after ejection (then half-open probing)")
	nodeRetries := flag.Int("node-retries", -1, "max additional backends tried after a transport failure (-1 = all others)")
	seed := flag.Int64("seed", 1, "determinism seed for power-of-two-choices sampling")
	coRouteRSA := flag.Bool("coroute-rsa", true, "concentrate same-key non-resume rsa-decrypt traffic on one ring-chosen backend (bounded by -coroute-factor)")
	coRouteFactor := flag.Float64("coroute-factor", 2.0, "co-routing load ceiling: spill to p2c when the preferred backend costs more than factor x the cheapest alternative")
	metrics := flag.Bool("metrics", false, "print the wispgw_* text metrics dump on shutdown")
	addrFile := flag.String("addrfile", "", "write the bound HTTP address to this file (for scripts)")
	wireAddrFile := flag.String("wire-addrfile", "", "write the bound wire address to this file (for scripts)")
	drainTimeout := flag.Duration("drain", 30*time.Second, "graceful drain budget on shutdown")
	flag.Parse()

	var addrs []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			addrs = append(addrs, b)
		}
	}
	if len(addrs) == 0 {
		fatal(fmt.Errorf("-backends is required (comma-separated wispd wire addresses)"))
	}
	retries := *nodeRetries
	if retries < 0 {
		retries = len(addrs) - 1
	}

	router, err := gwroute.NewRouter(gwroute.Config{
		Backends:      addrs,
		Replicas:      *replicas,
		MaxInflight:   *maxInflight,
		FailThreshold: *ejectAfter,
		EjectFor:      *ejectFor,
		NodeRetries:   retries,
		Seed:          *seed,
		CoRouteRSA:    *coRouteRSA,
		CoRouteFactor: *coRouteFactor,
		Dial:          func(a string) (serve.Transport, error) { return wire.Dial(a) },
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := gwroute.NewServer(router)
	bound, err := httpSrv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound.String()), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wispgw: routing over %d backends (%s)\n", len(addrs), strings.Join(addrs, ", "))
	fmt.Printf("wispgw: HTTP on %s\n", bound)

	var wireSrv *wire.Server
	wireErr := make(chan error, 1)
	if *listenWire != "" {
		wireSrv = wire.NewServer(router, wire.ServerConfig{})
		wireBound, err := wireSrv.Listen(*listenWire)
		if err != nil {
			fatal(err)
		}
		if *wireAddrFile != "" {
			if err := os.WriteFile(*wireAddrFile, []byte(wireBound.String()), 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wispgw: wire protocol on %s\n", wireBound)
		go func() { wireErr <- wireSrv.Serve() }()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve() }()

	select {
	case err := <-serveErr:
		if err != nil {
			fatal(err)
		}
	case err := <-wireErr:
		if err != nil {
			fatal(err)
		}
	case s := <-sig:
		fmt.Printf("wispgw: %v — draining...\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := httpSrv.Shutdown(ctx) // marks the router draining first
		cancel()
		if wireSrv != nil {
			if werr := wireSrv.Close(); werr != nil && err == nil {
				err = werr
			}
		}
		stats := router.Stats()
		if cerr := router.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		fmt.Printf("wispgw: drained cleanly (%d routed ok, %d shed, %d errors)\n",
			stats.OK, stats.Shed, stats.Errors)
		if *metrics {
			fmt.Print(stats.Text())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wispgw:", err)
	os.Exit(1)
}
