// Command wispssl reproduces Figure 8: the estimated SSL transaction
// speedup across session sizes, with the public-key / symmetric /
// miscellaneous workload breakup.
//
// Usage:
//
//	wispssl [-rsabits 1024] [-json]
//
// -json emits machine-readable rows (one JSON document with a `rows`
// array) so wispload runs and CI can diff served results against the
// analytic model.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"wisp"
	"wisp/internal/ssl"
)

// jsonBreakdown mirrors ssl.Breakdown with stable wire names.
type jsonBreakdown struct {
	PublicKey float64 `json:"public_key_cycles"`
	Symmetric float64 `json:"symmetric_cycles"`
	Misc      float64 `json:"misc_cycles"`
	Total     float64 `json:"total_cycles"`
}

func toJSONBreakdown(b ssl.Breakdown) jsonBreakdown {
	return jsonBreakdown{PublicKey: b.PublicKey, Symmetric: b.Symmetric, Misc: b.Misc, Total: b.Total()}
}

// jsonRow is one machine-readable Figure 8 row.
type jsonRow struct {
	Bytes   int           `json:"bytes"`
	Speedup float64       `json:"speedup"`
	Base    jsonBreakdown `json:"base"`
	Opt     jsonBreakdown `json:"opt"`
}

func main() {
	rsaBits := flag.Int("rsabits", 1024, "RSA modulus size for the handshake")
	jsonOut := flag.Bool("json", false, "emit machine-readable rows as JSON")
	flag.Parse()

	p, err := wisp.New(wisp.Options{RSABits: *rsaBits})
	if err != nil {
		fatal(err)
	}
	rows, err := p.Figure8(nil)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		doc := struct {
			RSABits int       `json:"rsa_bits"`
			Rows    []jsonRow `json:"rows"`
		}{RSABits: *rsaBits}
		for _, r := range rows {
			doc.Rows = append(doc.Rows, jsonRow{
				Bytes:   r.Bytes,
				Speedup: r.Speedup,
				Base:    toJSONBreakdown(r.Base),
				Opt:     toJSONBreakdown(r.Opt),
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Println("Figure 8 — estimated speedups for SSL transactions")
	fmt.Printf("%-10s %9s   %-32s %-32s\n", "size", "speedup", "baseline breakup", "optimized breakup")
	for _, r := range rows {
		bp, bs, bm := r.Base.Fractions()
		op, osym, om := r.Opt.Fractions()
		fmt.Printf("%-10s %8.2fX   pub %4.1f%% sym %4.1f%% misc %4.1f%%   pub %4.1f%% sym %4.1f%% misc %4.1f%%\n",
			fmt.Sprintf("%dKB", r.Bytes/1024), r.Speedup,
			100*bp, 100*bs, 100*bm, 100*op, 100*osym, 100*om)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wispssl:", err)
	os.Exit(1)
}
