// Command wispssl reproduces Figure 8: the estimated SSL transaction
// speedup across session sizes, with the public-key / symmetric /
// miscellaneous workload breakup.
//
// Usage:
//
//	wispssl [-rsabits 1024]
package main

import (
	"flag"
	"fmt"
	"os"

	"wisp"
)

func main() {
	rsaBits := flag.Int("rsabits", 1024, "RSA modulus size for the handshake")
	flag.Parse()

	p, err := wisp.New(wisp.Options{RSABits: *rsaBits})
	if err != nil {
		fatal(err)
	}
	rows, err := p.Figure8(nil)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Figure 8 — estimated speedups for SSL transactions")
	fmt.Printf("%-10s %9s   %-32s %-32s\n", "size", "speedup", "baseline breakup", "optimized breakup")
	for _, r := range rows {
		bp, bs, bm := r.Base.Fractions()
		op, osym, om := r.Opt.Fractions()
		fmt.Printf("%-10s %8.2fX   pub %4.1f%% sym %4.1f%% misc %4.1f%%   pub %4.1f%% sym %4.1f%% misc %4.1f%%\n",
			fmt.Sprintf("%dKB", r.Bytes/1024), r.Speedup,
			100*bp, 100*bs, 100*bm, 100*op, 100*osym, 100*om)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wispssl:", err)
	os.Exit(1)
}
