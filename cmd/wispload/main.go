// Command wispload is the closed-loop load generator for wispd: it
// replays the paper's Figure 8 transaction-size mix at configurable
// concurrency, verifies every served payload digest end to end, and
// reports p50/p95/p99 latency plus achieved throughput against the
// analytic cost model's prediction for the simulated platform.
//
// Usage:
//
//	wispload -addr 127.0.0.1:9311 [-proto http|wire] [-clients 4] [-n 25]
//	         [-mix 1k,4k,16k,32k] [-ops ssl] [-record 1024]
//	         [-deadline-us 0] [-retries 0] [-backoff-us 2000]
//	         [-hedge-us 0] [-resume-ratio 0] [-think-us 0] [-seed 1]
//	         [-json] [-stats]
//	         [-attack flood,thrash,oversize,slowloris] [-attack-ratio 0.25]
//	         [-attack-conc 4] [-bench-out FILE] [-bench-label NAME]
//
// -resume-ratio R marks fraction R of ssl/handshake requests as
// resumable: the gateway serves them with an abbreviated handshake from
// its session cache (no RSA op) and the report splits their latency into
// a separate "+resumed" class.  -bench-out writes a compact benchmark
// record (per-op p50/p99, throughput, cache hit rates) for the CI
// regression gate (cmd/benchcmp).
//
// -proto wire drives the binary wire protocol (internal/wire) instead of
// HTTP: one multiplexed TCP connection per client against a wispd
// -listen-wire port or a wispgw routing tier.  Request streams are
// byte-identical across protocols on the same seed, so wire and HTTP runs
// verify the same digests.  Adversarial profiles pre-frame HTTP bodies
// and are HTTP-only.
//
// -attack mixes adversarial clients into the run alongside the legit
// closed loops: flood (concurrent full-handshake SSL), thrash
// (session-cache churn), oversize (max-size and over-limit payloads) and
// slowloris (dribbled request bodies).  Attackers are ADDITIONAL clients —
// the legit request streams are byte-identical to an attack-free run on
// the same seed — and the report splits legit vs attack outcomes so the
// fairness gate can hold legit-only p99 against an attack-free baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wisp/internal/serve"
	"wisp/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9311", "wispd address")
	proto := flag.String("proto", "http", "transport protocol: http (POST /v1/offload) or wire (binary TCP)")
	clients := flag.Int("clients", 4, "concurrent closed-loop clients")
	perClient := flag.Int("n", 25, "requests per client")
	mix := flag.String("mix", "1k,4k,16k,32k", "payload size mix (k/m suffixes)")
	ops := flag.String("ops", "ssl", "comma-separated op mix (ssl,handshake,record,rsa-decrypt,aes,3des,md5,hmac-md5,...)")
	record := flag.Int("record", 0, "record size for ssl transactions (0 = server default)")
	deadline := flag.Int64("deadline-us", 0, "per-request deadline budget in µs (0 = none)")
	retries := flag.Int("retries", 0, "max client retries for shed responses (exponential backoff + jitter)")
	backoff := flag.Int64("backoff-us", 2000, "base retry backoff in µs (doubles per retry)")
	hedge := flag.Int64("hedge-us", 0, "hedge deadline-bearing requests unanswered after this many µs (0 = off)")
	resumeRatio := flag.Float64("resume-ratio", 0, "fraction of ssl/handshake requests offering session resumption (0..1)")
	thinkUS := flag.Int64("think-us", 0, "mean jittered pause between a legit client's requests in µs (0 = back-to-back closed loop)")
	splitUS := flag.Int64("split-us", 0, "bucket outcomes into early_*/late_* report windows at this many µs into the run (0 = off; cluster kill gates split at the kill time)")
	attack := flag.String("attack", "", "comma-separated adversarial profiles to mix in (flood,thrash,oversize,slowloris)")
	attackRatio := flag.Float64("attack-ratio", 0.25, "target fraction of all clients that are attackers (attackers are additional clients)")
	attackConc := flag.Int("attack-conc", 4, "concurrent request streams per attacker ClientID")
	attackRTT := flag.Int64("attack-rtt-us", 0, "modeled attacker round-trip in µs per stream request (0 = default 20000, negative = unpaced)")
	seed := flag.Int64("seed", 1, "payload determinism seed")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	stats := flag.Bool("stats", true, "fetch and print server-side /stats after the run")
	benchOut := flag.String("bench-out", "", "write a benchmark record (per-op p50/p99, throughput, cache hit rates) to this file")
	benchLabel := flag.String("bench-label", "", "experiment label stamped on the benchmark record (benchcmp refuses cross-label comparisons)")
	flag.Parse()

	var dial func(string) (serve.Transport, error)
	switch *proto {
	case "http":
	case "wire":
		dial = func(a string) (serve.Transport, error) { return wire.Dial(a) }
	default:
		fatal(fmt.Errorf("unknown -proto %q (want http or wire)", *proto))
	}

	if *resumeRatio < 0 || *resumeRatio > 1 {
		fatal(fmt.Errorf("resume-ratio %g out of range [0,1]", *resumeRatio))
	}

	sizes, err := parseMix(*mix)
	if err != nil {
		fatal(err)
	}
	opList, err := parseOps(*ops)
	if err != nil {
		fatal(err)
	}
	profiles, err := serve.ParseAttackProfiles(*attack)
	if err != nil {
		fatal(err)
	}
	if *attackRatio < 0 || *attackRatio >= 1 {
		fatal(fmt.Errorf("attack-ratio %g out of range [0,1)", *attackRatio))
	}

	rep, err := serve.RunLoad(serve.LoadConfig{
		Addr:        *addr,
		Dial:        dial,
		Clients:     *clients,
		PerClient:   *perClient,
		Mix:         sizes,
		Ops:         opList,
		RecordSize:  *record,
		DeadlineUS:  *deadline,
		Retries:     *retries,
		BackoffUS:   *backoff,
		HedgeUS:     *hedge,
		ResumeRatio: *resumeRatio,
		ThinkUS:     *thinkUS,
		SplitUS:     *splitUS,
		Seed:        *seed,

		Attack:            profiles,
		AttackRatio:       *attackRatio,
		AttackConcurrency: *attackConc,
		AttackRTTUS:       *attackRTT,
	})
	if err != nil {
		fatal(err)
	}

	var serverStats *serve.Stats
	if *stats || *benchOut != "" {
		if dial != nil {
			if tr, err := dial(*addr); err == nil {
				serverStats, _ = tr.Stats()
				tr.Close()
			}
		} else {
			serverStats, _ = serve.NewClient(*addr).Stats()
		}
	}

	if *benchOut != "" {
		if err := serve.WriteBenchRecord(*benchOut, *benchLabel, rep, serverStats); err != nil {
			fatal(err)
		}
	}

	shownStats := serverStats
	if !*stats {
		shownStats = nil
	}
	if *jsonOut {
		doc := struct {
			Report *serve.LoadReport `json:"report"`
			Server *serve.Stats      `json:"server_stats,omitempty"`
		}{rep, shownStats}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(rep.Format())
		if shownStats != nil {
			fmt.Printf("server: %d requests, %d ok, shed %d (queue-full %d, deadline %d, draining %d, throttle %d), expired %d\n",
				shownStats.Requests, shownStats.OK, shownStats.Shed,
				shownStats.ShedByReason["queue-full"], shownStats.ShedByReason["deadline"],
				shownStats.ShedByReason["draining"], shownStats.ShedByReason["throttle"], shownStats.Expired)
			if q := shownStats.QoS; q != nil {
				fmt.Printf("server qos: %d throttled, %d clients tracked, fair-waiting %d\n",
					q.Throttled, len(q.Clients), q.FairWaiting)
			}
			fmt.Printf("server dispatch (%s): %d steals, %d redirects, %d retries, %d hedged, %d sheds-while-idle\n",
				shownStats.Dispatch, shownStats.Steals, shownStats.Redirects,
				shownStats.Retries, shownStats.Hedges, shownStats.ShedWhileIdle)
			if ssl, ok := shownStats.PerOp["ssl"]; ok && ssl.Latency.Count > 0 {
				fmt.Printf("server ssl latency: p50 %.0fµs  p95 %.0fµs  p99 %.0fµs (batch p50 %.1f)\n",
					ssl.Latency.P50, ssl.Latency.P95, ssl.Latency.P99, shownStats.BatchSize.P50)
			}
			if sc := shownStats.SessionCache; sc != nil && sc.Hits+sc.Misses > 0 {
				fmt.Printf("server session cache: %d hits, %d misses (%.0f%% hit rate, %d resumed)\n",
					sc.Hits, sc.Misses, 100*sc.HitRate, shownStats.Resumed)
			}
		}
	}
	if rep.Mismatches > 0 {
		fatal(fmt.Errorf("%d payload mismatches", rep.Mismatches))
	}
}

func parseMix(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(strings.ToLower(part))
		if part == "" {
			continue
		}
		mult := 1
		switch {
		case strings.HasSuffix(part, "k"):
			mult, part = 1024, strings.TrimSuffix(part, "k")
		case strings.HasSuffix(part, "m"):
			mult, part = 1<<20, strings.TrimSuffix(part, "m")
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad mix entry %q: %w", part, err)
		}
		out = append(out, n*mult)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty size mix")
	}
	return out, nil
}

func parseOps(s string) ([]serve.Op, error) {
	var out []serve.Op
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		op := serve.Op(part)
		if !serve.ValidOp(op) {
			return nil, fmt.Errorf("unknown op %q", part)
		}
		out = append(out, op)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty op mix")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wispload:", err)
	os.Exit(1)
}
