#!/bin/sh
# serve_attack.sh — adversarial fairness regression gate.
#
# Phase A boots a QoS-enabled wispd (per-client token bucket + DRR fair
# queue + slow-loris read timeout) and replays a legit-only ssl+record mix
# to establish the attack-free baseline, written as a benchmark record.
#
# Phase B boots an identically configured daemon and replays the *same*
# legit workload (same seed — the legit byte streams are identical) with
# all four adversarial profiles mixed in at a 25% attacker-client ratio:
# flood (expensive op saturation), thrash (session-cache churn), oversize
# (over-limit payloads against the hardened decode) and slowloris
# (dribbled request bodies against the read timeout).  Attackers sustain
# their pressure for the whole legit replay and far outnumber legit
# arrivals per second; the client ratio understates the traffic share.
#
# The gate asserts, on both phases: zero payload digest mismatches and
# zero sheds issued while a shard sat idle (throttle sheds are policy, not
# capacity, and are never counted there).  On the mixed phase it asserts
# the attackers were actually throttled, then holds the headline fairness
# bound: legit record-op p99 under attack must stay within 1.5x of the
# attack-free baseline (attack latencies land in separate "+attack" op
# classes, so the plain record row is legit-only in both records).
#
# On failure, logs and reports are copied to $ARTIFACT_DIR when set (CI
# uploads them).  Exits non-zero on any violation or unclean drain.
set -eu

BIN="${BIN:-bin}"
BENCH_ATTACK_JSON="${BENCH_ATTACK_JSON:-BENCH_attack.json}"
TMP="$(mktemp -d)"
WISPD_PID=""

collect_artifacts() {
    if [ -n "${ARTIFACT_DIR:-}" ]; then
        mkdir -p "$ARTIFACT_DIR"
        cp "$TMP"/*.log "$TMP"/*.json "$ARTIFACT_DIR"/ 2>/dev/null || true
    fi
}
trap 'status=$?; [ -n "$WISPD_PID" ] && kill "$WISPD_PID" 2>/dev/null || true; [ "$status" -ne 0 ] && collect_artifacts; rm -rf "$TMP"; exit $status' EXIT INT TERM

boot_wispd() {
    log="$1"; shift
    : >"$TMP/addr"
    "$BIN/wispd" -addr 127.0.0.1:0 -addrfile "$TMP/addr" "$@" >"$TMP/$log" 2>&1 &
    WISPD_PID=$!
    i=0
    while [ ! -s "$TMP/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "serve-attack: wispd never came up" >&2
            cat "$TMP/$log" >&2
            exit 1
        fi
        sleep 0.1
    done
    ADDR="$(cat "$TMP/addr")"
}

drain_wispd() {
    kill -TERM "$WISPD_PID"
    wait "$WISPD_PID"
    WISPD_PID=""
    grep -q "drained cleanly" "$TMP/$1" || {
        echo "serve-attack: daemon did not drain cleanly" >&2
        cat "$TMP/$1" >&2
        exit 1
    }
}

# check_report NAME FILE — the invariants both phases must hold.
check_report() {
    grep -q '"mismatches": 0' "$2" || {
        echo "serve-attack: $1: payload mismatches detected" >&2
        exit 1
    }
    grep -q '"shed_while_idle": 0' "$2" || {
        echo "serve-attack: $1: requests were shed while a shard sat idle" >&2
        grep -E '"shed|"throttled' "$2" >&2 || true
        exit 1
    }
}

# Knob rationale (measured on a 1-CPU runner; the shape, not the absolute
# numbers, is what matters):
#
#   - The legit replay is think-time paced (~600ms between requests) so it
#     runs below saturation.  A pure closed loop at saturation measures its
#     own queueing — every extra flow inflates every latency and the
#     comparison degenerates into a flow-count ratio.
#   - Attackers are paced per stream by a modeled WAN round-trip (150ms;
#     oversize 5x — megabyte uploads are bandwidth-bound).  An unpaced
#     loopback attacker is a co-located CPU burner, and its spin would
#     charge the load generator's own scheduling to the latency
#     measurement the gate is taking.
#   - client-rate bounds each ClientID's admitted estimated-work rate, so
#     it directly caps the CPU share one attacker identity can buy: 80ms/s
#     of estimated work ≈ 8% of the box per identity, while a paced legit
#     client demands well under half that.  client-burst absorbs one
#     full-size (32KB) request estimate so legit bursts never borrow.
#   - fair-limit is deliberately tight (10ms of outstanding estimated
#     work) so the DRR fair queue actually arbitrates dispatch order under
#     contention; with a loose limit admitted attack ops FIFO-race legit
#     ops to the shards and the bucket alone cannot protect the tail.
WISPD_ARGS="-shards 2 -dispatch cost -seed 1 -metrics \
    -client-rate 80000 -client-burst 100000 -fair-limit 10000 \
    -qos-quantum 5000 -max-cost 150000 -read-timeout 500ms"
LEGIT_ARGS="-clients 12 -n 80 -ops ssl,record -mix 1k,4k,16k,32k \
    -resume-ratio 0.5 -deadline-us 30000000 -retries 2 -think-us 600000 \
    -seed 42"
ATTACK_ARGS="-attack flood,thrash,oversize,slowloris -attack-ratio 0.25 \
    -attack-conc 4 -attack-rtt-us 150000"

# warmup — a short unmeasured replay so both phases start with converged
# service-time EWMAs; without it the p99 of either phase is dominated by
# the first few requests queueing behind work admitted at cold-prior
# estimates rather than by steady-state behavior.  The warmup mix spans
# the full Figure-8 sizes so the per-byte cost estimators converge too.
warmup() {
    "$BIN/wispload" -addr "$ADDR" -clients 2 -n 6 -ops ssl,record,handshake \
        -mix 1k,4k,16k,32k -seed 11 -stats=false >/dev/null
}

# ---- Phase A: attack-free baseline ----
# The baseline replay runs twice and the fairness bound below holds
# against the slower of the two records.  The gate's question is whether
# attack pressure pushes legit latency past what the server demonstrably
# does attack-free; a single baseline draw whose tail came out unluckily
# fast would fail that question on reference noise, not on regression.
# shellcheck disable=SC2086
boot_wispd wispd_base.log $WISPD_ARGS
warmup
echo "serve-attack: baseline runs on $ADDR (QoS on, no attackers)"
for pass in 1 2; do
    # shellcheck disable=SC2086
    "$BIN/wispload" -addr "$ADDR" $LEGIT_ARGS -json \
        -bench-out "$TMP/bench_base$pass.json" >"$TMP/report_base$pass.json"
    check_report "baseline $pass" "$TMP/report_base$pass.json"
done
drain_wispd wispd_base.log
echo "serve-attack: baseline clean (zero mismatches, zero sheds-with-idle-shards)"

# ---- Phase B: same legit workload + all four adversarial profiles ----
# shellcheck disable=SC2086
boot_wispd wispd_attack.log $WISPD_ARGS
warmup
echo "serve-attack: mixed run on $ADDR (flood,thrash,oversize,slowloris @ 25% clients)"
# shellcheck disable=SC2086
"$BIN/wispload" -addr "$ADDR" $LEGIT_ARGS $ATTACK_ARGS -json \
    -bench-out "$TMP/bench_attack.json" >"$TMP/report_attack.json"
drain_wispd wispd_attack.log
check_report mixed "$TMP/report_attack.json"

grep -Eq '"throttled": [1-9]' "$TMP/report_attack.json" || {
    echo "serve-attack: no requests throttled — attackers ran unmetered" >&2
    grep -E '"(throttled|shed|ok)":' "$TMP/report_attack.json" >&2 || true
    exit 1
}
echo "serve-attack: attackers throttled; mixed run clean"

# ---- The fairness bound: legit record p99 within 1.5x of baseline ----
# Attack latencies land in separate "+attack" op classes, so the plain
# record row of the mixed record is legit-only; passing against either
# baseline draw means the mixed tail is within bounds of an observed
# attack-free tail.
"$BIN/benchcmp" -baseline "$TMP/bench_base1.json" -current "$TMP/bench_attack.json" \
    -assert-p99-lt 'record<record' -p99-factor 1.5 ||
    "$BIN/benchcmp" -baseline "$TMP/bench_base2.json" -current "$TMP/bench_attack.json" \
        -assert-p99-lt 'record<record' -p99-factor 1.5
cp "$TMP/bench_attack.json" "$BENCH_ATTACK_JSON"
echo "serve-attack: legit record p99 within 1.5x of attack-free baseline; record written to $BENCH_ATTACK_JSON"
echo "serve-attack: ok"
