#!/bin/sh
# serve_adapt.sh — adaptive-governor A/B gate.
#
# Both runs boot a one-shard wispd with a deliberately mis-sized static
# batch width (1: scalar serving) and replay the same shifting wispload
# mix — a record-op warmup that keeps the governor's telemetry honest
# about a non-RSA phase, then a sustained rsa-decrypt burst.  The only
# difference between the runs is -govern: the static run is stuck at
# width 1, the governed run must observe the decrypt stream and widen
# the batch engine at runtime.  1024-bit keys make the burst
# compute-bound (at 512 bits the HTTP round trip dominates and dilutes
# the batched engine's gain below the gate's threshold).
#
# Asserted: the governed run logs at least one width adaptation, its
# metrics dump shows governor widen ticks and batched RSA serving, both
# runs finish with zero digest mismatches (wispload exits non-zero on
# any), and benchcmp proves the governed run recovers >=15% throughput
# over the mis-sized static run.  The governed record is written to
# $BENCH_JSON (default BENCH_adapt.json) for CI artifacts.
#
# The governor runs with -govern-explore=false here: engine re-selection
# needs a background ISS characterization that takes longer than this
# gate's whole budget, and the width/gather loop is what the A/B is
# exercising.  A fast -govern-tick makes adaptation land within the
# burst's first fraction of a second.
set -eu

BIN="${BIN:-bin}"
BENCH_JSON="${BENCH_JSON:-BENCH_adapt.json}"
TMP="$(mktemp -d)"
WISPD_PID=""

collect_artifacts() {
    if [ -n "${ARTIFACT_DIR:-}" ]; then
        mkdir -p "$ARTIFACT_DIR"
        cp "$TMP"/*.log "$TMP"/*.json "$ARTIFACT_DIR"/ 2>/dev/null || true
    fi
}
trap 'status=$?; [ -n "$WISPD_PID" ] && kill "$WISPD_PID" 2>/dev/null || true; [ "$status" -ne 0 ] && collect_artifacts; rm -rf "$TMP"; exit $status' EXIT INT TERM

# boot_wispd LOGNAME ARGS... — start a daemon, wait for its address file.
boot_wispd() {
    log="$1"; shift
    : >"$TMP/addr"
    "$BIN/wispd" -addr 127.0.0.1:0 -addrfile "$TMP/addr" "$@" >"$TMP/$log" 2>&1 &
    WISPD_PID=$!
    i=0
    while [ ! -s "$TMP/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "serve-adapt: wispd never came up" >&2
            cat "$TMP/$log" >&2
            exit 1
        fi
        sleep 0.1
    done
    ADDR="$(cat "$TMP/addr")"
}

# drain_wispd LOGNAME — SIGTERM, clean exit, drain banner required.
drain_wispd() {
    kill -TERM "$WISPD_PID"
    wait "$WISPD_PID"
    WISPD_PID=""
    grep -q "drained cleanly" "$TMP/$1" || {
        echo "serve-adapt: daemon did not drain cleanly" >&2
        cat "$TMP/$1" >&2
        exit 1
    }
}

# run_mix LOADLOG BENCHOUT — the shared shifting workload: a record-op
# phase (no RSA: an adapted width must not be won here), then the
# sustained decrypt burst both runs are measured on.
run_mix() {
    "$BIN/wispload" -addr "$ADDR" -clients 4 -n 30 -ops record -mix 1k \
        -seed 7 >"$TMP/$1.warm"
    "$BIN/wispload" -addr "$ADDR" -clients 8 -n 300 -ops rsa-decrypt -mix 1k \
        -seed 3 -bench-out "$TMP/$2" >"$TMP/$1"
}

# ---- Run A: static, mis-sized for the decrypt burst ----
boot_wispd wispd_static.log -shards 1 -dispatch cost -seed 1 -batch-width 1 \
    -rsabits 1024 -metrics
echo "serve-adapt: static width-1 run on $ADDR"
run_mix load_static.log bench_static.json
drain_wispd wispd_static.log

# ---- Run B: same daemon shape, governed ----
boot_wispd wispd_gov.log -shards 1 -dispatch cost -seed 1 -batch-width 1 \
    -rsabits 1024 -govern -govern-tick 25ms -govern-explore=false -metrics
echo "serve-adapt: governed run on $ADDR (tick 25ms)"
run_mix load_gov.log bench_gov.json
drain_wispd wispd_gov.log

grep -E 'governor: batch width' "$TMP/wispd_gov.log" || true
grep -q 'governor: batch width' "$TMP/wispd_gov.log" || {
    echo "serve-adapt: governor never adapted the batch width" >&2
    cat "$TMP/wispd_gov.log" >&2
    exit 1
}
grep -qE 'wispd_governor_width_widen_total [1-9]' "$TMP/wispd_gov.log" || {
    echo "serve-adapt: no width-widen ticks in the governed metrics dump" >&2
    exit 1
}
grep -qE 'wispd_rsa_ops_batched_total [1-9]' "$TMP/wispd_gov.log" || {
    echo "serve-adapt: governed run never served through the batched engine" >&2
    exit 1
}

"$BIN/benchcmp" -baseline "$TMP/bench_static.json" -current "$TMP/bench_gov.json" \
    -assert-rps-gt -rps-factor 1.15
cp "$TMP/bench_gov.json" "$BENCH_JSON"
echo "serve-adapt: governed run recovers >=15% throughput over the mis-sized static width; record written to $BENCH_JSON"
echo "serve-adapt: ok"
