#!/bin/sh
# serve_cluster.sh — cluster serving gate: one wispload workload against a
# single wispd (direct wire) and against wispgw routing over three wispd
# backends, asserting the routing tier preserves correctness and actually
# scales.
#
# Phase A (affinity parity, host speed): a pure resumption workload
# (-ops handshake -resume-ratio 1) replayed against one node and against
# the cluster.  Session caches live per backend, so cluster resumption
# only works if the consistent-hash ring keeps each client on one node;
# the gate holds the cluster's resumed/ok rate within 5 points of the
# single node's and requires affinity hits with zero ring redirects.
#
# Phase B (throughput scaling, model-paced): both topologies run
# -pace-hz 20e6, which stretches a record-4k op to ~71ms of modeled
# service time so three daemons on a small host overlap in their pacing
# sleeps instead of contending for the CPU (at the paper's native 188 MHz
# the host's own ISS crypto time exceeds the modeled time and every
# topology converges on the host's serial crypto throughput).  The gate:
# cluster rps >= 2x single-node rps, zero mismatches, and the cluster
# record written with -bench-label cluster so benchcmp refuses to compare
# it against single-node baselines.
#
# Phase C (node failure, model-paced): the same cluster workload with one
# backend SIGKILLed mid-run.  The gate: the run still completes with zero
# mismatches, zero sheds and zero client-visible errors (in-flight
# requests on the dead node are retried on survivors), and the gateway
# reports at least one ejection.
#
# On failure, logs and reports are copied to $ARTIFACT_DIR when set (CI
# uploads them).  Exits non-zero on any violation or unclean drain.
set -eu

BIN="${BIN:-bin}"
BENCH_CLUSTER_JSON="${BENCH_CLUSTER_JSON:-BENCH_cluster.json}"
TMP="$(mktemp -d)"
NODE_PIDS=""
GW_PID=""

collect_artifacts() {
    if [ -n "${ARTIFACT_DIR:-}" ]; then
        mkdir -p "$ARTIFACT_DIR"
        cp "$TMP"/*.log "$TMP"/*.json "$ARTIFACT_DIR"/ 2>/dev/null || true
    fi
}
kill_everything() {
    [ -n "$GW_PID" ] && kill "$GW_PID" 2>/dev/null || true
    for p in $NODE_PIDS; do kill "$p" 2>/dev/null || true; done
}
trap 'status=$?; kill_everything; [ "$status" -ne 0 ] && collect_artifacts; rm -rf "$TMP"; exit $status' EXIT INT TERM

wait_for_file() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "serve-cluster: $2 never came up" >&2
            cat "$TMP/$3" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# boot_node IDX LOG ARGS... — one wispd speaking the wire protocol on an
# ephemeral port, its address in $TMP/wire$IDX.
boot_node() {
    idx="$1" log="$2"; shift 2
    : >"$TMP/wire$idx"
    "$BIN/wispd" -addr 127.0.0.1:0 -listen-wire 127.0.0.1:0 \
        -wire-addrfile "$TMP/wire$idx" "$@" >"$TMP/$log" 2>&1 &
    NODE_PIDS="$NODE_PIDS $!"
    wait_for_file "$TMP/wire$idx" "wispd node $idx" "$log"
}

# boot_gw LOG BACKENDS — the routing tier over a comma-separated backend
# list, wire address in $TMP/gwwire.
boot_gw() {
    log="$1" backends="$2"
    : >"$TMP/gwwire"
    "$BIN/wispgw" -backends "$backends" -addr 127.0.0.1:0 \
        -listen-wire 127.0.0.1:0 -wire-addrfile "$TMP/gwwire" -metrics \
        >"$TMP/$log" 2>&1 &
    GW_PID=$!
    wait_for_file "$TMP/gwwire" "wispgw" "$log"
}

# drain_all GWLOG NODELOGS... — graceful SIGTERM drain, gateway first so
# no new work reaches the backends, asserting every process reports a
# clean drain.
drain_all() {
    gwlog="$1"; shift
    if [ -n "$GW_PID" ]; then
        kill -TERM "$GW_PID" && wait "$GW_PID"
        GW_PID=""
        grep -q "drained cleanly" "$TMP/$gwlog" || {
            echo "serve-cluster: gateway did not drain cleanly" >&2
            cat "$TMP/$gwlog" >&2
            exit 1
        }
    fi
    for p in $NODE_PIDS; do kill -TERM "$p" && wait "$p"; done
    NODE_PIDS=""
    for log in "$@"; do
        grep -q "drained cleanly" "$TMP/$log" || {
            echo "serve-cluster: $log did not drain cleanly" >&2
            cat "$TMP/$log" >&2
            exit 1
        }
    done
}

check_clean() {
    grep -q '"mismatches": 0' "$2" || {
        echo "serve-cluster: $1: payload digest mismatches" >&2
        grep -E '"(mismatches|ok|errors)":' "$2" >&2 || true
        exit 1
    }
}

json_field() {
    sed -n "s/.*\"$1\": \([0-9.]*\).*/\1/p" "$2" | head -n 1
}

# ---- Phase A: resumption affinity parity (host speed) ----
# Identical pure-resumption replays: every client performs one full
# handshake then resumes it repeatedly.  Same seed, same client count, so
# the only variable is the topology.
AFF_ARGS="-proto wire -clients 8 -n 12 -ops handshake -resume-ratio 1 -seed 42"

boot_node 1 node_a_single.log -shards 1 -seed 1
echo "serve-cluster: phase A single node on $(cat "$TMP/wire1")"
# shellcheck disable=SC2086
"$BIN/wispload" -addr "$(cat "$TMP/wire1")" $AFF_ARGS -json \
    -stats=false >"$TMP/report_aff_single.json"
drain_all "" node_a_single.log
check_clean "affinity single" "$TMP/report_aff_single.json"

boot_node 1 node_a1.log -shards 1 -seed 1
boot_node 2 node_a2.log -shards 1 -seed 2
boot_node 3 node_a3.log -shards 1 -seed 3
boot_gw gw_a.log "$(cat "$TMP/wire1"),$(cat "$TMP/wire2"),$(cat "$TMP/wire3")"
echo "serve-cluster: phase A cluster on $(cat "$TMP/gwwire") (3 backends)"
# shellcheck disable=SC2086
"$BIN/wispload" -addr "$(cat "$TMP/gwwire")" $AFF_ARGS -json \
    -stats=false >"$TMP/report_aff_cluster.json"
drain_all gw_a.log node_a1.log node_a2.log node_a3.log
check_clean "affinity cluster" "$TMP/report_aff_cluster.json"

single_ok="$(json_field ok "$TMP/report_aff_single.json")"
single_res="$(json_field resumed "$TMP/report_aff_single.json")"
cluster_ok="$(json_field ok "$TMP/report_aff_cluster.json")"
cluster_res="$(json_field resumed "$TMP/report_aff_cluster.json")"
awk -v so="$single_ok" -v sr="${single_res:-0}" \
    -v co="$cluster_ok" -v cr="${cluster_res:-0}" 'BEGIN {
    if (so == 0 || co == 0) exit 1
    srate = 100 * sr / so; crate = 100 * cr / co
    printf "serve-cluster: resumed rate %.1f%% single vs %.1f%% cluster\n", srate, crate
    if (sr == 0) exit 1            # the single node must actually resume
    d = srate - crate; if (d < 0) d = -d
    exit !(d <= 5)
}' || {
    echo "serve-cluster: cluster resumption rate diverged >5 points from single node" >&2
    exit 1
}
grep -Eq '^wispgw_affinity_hits_total [1-9]' "$TMP/gw_a.log" || {
    echo "serve-cluster: no session-affinity hits — resumes were not ring-routed" >&2
    grep -E '^wispgw_' "$TMP/gw_a.log" >&2 || true
    exit 1
}
grep -q '^wispgw_redirects_total 0$' "$TMP/gw_a.log" || {
    echo "serve-cluster: ring redirects on a healthy cluster" >&2
    grep -E '^wispgw_(affinity|redirects)' "$TMP/gw_a.log" >&2 || true
    exit 1
}
echo "serve-cluster: phase A ok — affinity preserved resumption across the ring"

# ---- Phase B: throughput scaling (model-paced) ----
# 20 MHz pacing makes a record-4k op ~71ms of modeled service, an order
# of magnitude above its host ISS cost, so backend daemons spend their
# time in pacing sleeps and the topologies compare on modeled capacity.
PACE="-pace-hz 20e6"
TPUT_OPS="-n 10 -ops record -mix 4k -seed 7"

boot_node 1 node_b_single.log -shards 1 -seed 1 $PACE
echo "serve-cluster: phase B single node (paced)"
# shellcheck disable=SC2086
"$BIN/wispload" -addr "$(cat "$TMP/wire1")" -proto wire -clients 8 $TPUT_OPS \
    -json -stats=false >"$TMP/report_tput_single.json"
drain_all "" node_b_single.log
check_clean "throughput single" "$TMP/report_tput_single.json"

boot_node 1 node_b1.log -shards 1 -seed 1 $PACE
boot_node 2 node_b2.log -shards 1 -seed 2 $PACE
boot_node 3 node_b3.log -shards 1 -seed 3 $PACE
boot_gw gw_b.log "$(cat "$TMP/wire1"),$(cat "$TMP/wire2"),$(cat "$TMP/wire3")"
echo "serve-cluster: phase B cluster (paced, 3 backends)"
# shellcheck disable=SC2086
"$BIN/wispload" -addr "$(cat "$TMP/gwwire")" -proto wire -clients 24 $TPUT_OPS \
    -json -stats=false -bench-out "$TMP/bench_cluster.json" \
    -bench-label cluster >"$TMP/report_tput_cluster.json"
drain_all gw_b.log node_b1.log node_b2.log node_b3.log
check_clean "throughput cluster" "$TMP/report_tput_cluster.json"

single_rps="$(json_field achieved_rps "$TMP/report_tput_single.json")"
cluster_rps="$(json_field achieved_rps "$TMP/report_tput_cluster.json")"
awk -v s="$single_rps" -v c="$cluster_rps" 'BEGIN {
    printf "serve-cluster: %.1f rps single vs %.1f rps cluster (%.2fx)\n", s, c, c / s
    exit !(s > 0 && c >= 2 * s)
}' || {
    echo "serve-cluster: cluster throughput below 2x single node" >&2
    exit 1
}
# The labeled record must compare against itself under -label and refuse
# an unlabeled current record — the cross-experiment guard benchcmp
# applies before any metric comparison.
"$BIN/benchcmp" -baseline "$TMP/bench_cluster.json" \
    -current "$TMP/bench_cluster.json" -label cluster >/dev/null
cp "$TMP/bench_cluster.json" "$BENCH_CLUSTER_JSON"
echo "serve-cluster: phase B ok — record written to $BENCH_CLUSTER_JSON"

# ---- Phase C: kill one backend mid-run (model-paced) ----
boot_node 1 node_c1.log -shards 1 -seed 1 $PACE
boot_node 2 node_c2.log -shards 1 -seed 2 $PACE
boot_node 3 node_c3.log -shards 1 -seed 3 $PACE
# Node 1 is the victim: the first PID appended this phase (drain_all
# reset the list after phase B).
VICTIM_PID="$(echo $NODE_PIDS | awk '{print $1}')"
boot_gw gw_c.log "$(cat "$TMP/wire1"),$(cat "$TMP/wire2"),$(cat "$TMP/wire3")"
echo "serve-cluster: phase C cluster up; killing one backend mid-run"
# shellcheck disable=SC2086
"$BIN/wispload" -addr "$(cat "$TMP/gwwire")" -proto wire -clients 24 \
    -n 12 -ops record -mix 4k -seed 9 -json -stats=false \
    >"$TMP/report_kill.json" &
LOAD_PID=$!
sleep 2
kill -9 "$VICTIM_PID" 2>/dev/null || true
wait "$VICTIM_PID" 2>/dev/null || true
NODE_PIDS="$(echo $NODE_PIDS | awk '{$1=""; print}')"
wait "$LOAD_PID" || {
    echo "serve-cluster: load generator failed during node kill" >&2
    cat "$TMP/report_kill.json" >&2 || true
    exit 1
}
drain_all gw_c.log node_c2.log node_c3.log
check_clean "node-kill" "$TMP/report_kill.json"
grep -q '"errors": 0' "$TMP/report_kill.json" || {
    echo "serve-cluster: client-visible errors during node kill (failover leaked)" >&2
    grep -E '"(errors|shed|ok)":' "$TMP/report_kill.json" >&2 || true
    exit 1
}
grep -q '"shed": 0' "$TMP/report_kill.json" || {
    echo "serve-cluster: requests shed during node kill (retry should absorb)" >&2
    grep -E '"(errors|shed|ok)":' "$TMP/report_kill.json" >&2 || true
    exit 1
}
grep -Eq '^wispgw_ejections_total [1-9]' "$TMP/gw_c.log" || {
    echo "serve-cluster: gateway never ejected the killed backend" >&2
    grep -E '^wispgw_' "$TMP/gw_c.log" >&2 || true
    exit 1
}
echo "serve-cluster: phase C ok — killed backend ejected, zero client-visible failures"

# ---- Phase D: replicated session resumption vs node loss (host speed) ----
# A pure-resumption workload with one backend SIGKILLed mid-run, run twice:
# with session-secret replication between the backends (-peers) and
# without.  -split-us buckets outcomes into pre/post-kill windows.  The
# gate: with replication on, the post-kill resumption rate stays within 10
# points of pre-kill (survivors serve the dead node's sessions from their
# replicas or pull them from each other), with zero mismatches and zero
# client-visible errors; with replication off, at least one displaced
# client falls back to a full handshake — the old behavior this feature
# removes — and never more fallbacks on than off.  The split lands just
# BEFORE the kill so every post-kill request is counted late.
KILL_ARGS="-proto wire -clients 16 -n 36 -ops handshake -mix 1k -resume-ratio 1 -think-us 120000 -split-us 1800000 -seed 11"

run_kill_leg() {
    leg="$1" report="$2" peered="$3"
    if [ "$peered" = "peered" ]; then
        boot_node 1 "node_d1_$leg.log" -shards 1 -seed 1 -replica-r 2 \
            -peers "@$TMP/wire2,@$TMP/wire3"
        boot_node 2 "node_d2_$leg.log" -shards 1 -seed 2 -replica-r 2 \
            -peers "@$TMP/wire1,@$TMP/wire3"
        boot_node 3 "node_d3_$leg.log" -shards 1 -seed 3 -replica-r 2 \
            -peers "@$TMP/wire1,@$TMP/wire2"
    else
        boot_node 1 "node_d1_$leg.log" -shards 1 -seed 1
        boot_node 2 "node_d2_$leg.log" -shards 1 -seed 2
        boot_node 3 "node_d3_$leg.log" -shards 1 -seed 3
    fi
    VICTIM_PID="$(echo $NODE_PIDS | awk '{print $1}')"
    boot_gw "gw_d_$leg.log" "$(cat "$TMP/wire1"),$(cat "$TMP/wire2"),$(cat "$TMP/wire3")"
    echo "serve-cluster: phase D ($leg) cluster up; killing one backend mid-run"
    # shellcheck disable=SC2086
    "$BIN/wispload" -addr "$(cat "$TMP/gwwire")" $KILL_ARGS -json -stats=false \
        >"$TMP/$report" &
    LOAD_PID=$!
    sleep 2
    kill -9 "$VICTIM_PID" 2>/dev/null || true
    wait "$VICTIM_PID" 2>/dev/null || true
    NODE_PIDS="$(echo $NODE_PIDS | awk '{$1=""; print}')"
    wait "$LOAD_PID" || {
        echo "serve-cluster: load generator failed during $leg kill leg" >&2
        cat "$TMP/$report" >&2 || true
        exit 1
    }
    drain_all "gw_d_$leg.log" "node_d2_$leg.log" "node_d3_$leg.log"
    check_clean "replication $leg" "$TMP/$report"
    grep -q '"errors": 0' "$TMP/$report" || {
        echo "serve-cluster: client-visible errors in $leg kill leg" >&2
        grep -E '"(errors|shed|ok)":' "$TMP/$report" >&2 || true
        exit 1
    }
}

run_kill_leg on report_repl_on.json peered
run_kill_leg off report_repl_off.json plain

on_early_ok="$(json_field early_ok "$TMP/report_repl_on.json")"
on_early_res="$(json_field early_resumed "$TMP/report_repl_on.json")"
on_late_ok="$(json_field late_ok "$TMP/report_repl_on.json")"
on_late_res="$(json_field late_resumed "$TMP/report_repl_on.json")"
off_late_ok="$(json_field late_ok "$TMP/report_repl_off.json")"
off_late_res="$(json_field late_resumed "$TMP/report_repl_off.json")"
awk -v eo="$on_early_ok" -v er="$on_early_res" \
    -v lo="$on_late_ok" -v lr="$on_late_res" \
    -v flo="$off_late_ok" -v flr="$off_late_res" 'BEGIN {
    if (eo == 0 || lo == 0 || flo == 0 || er == 0) exit 1
    erate = 100 * er / eo; lrate = 100 * lr / lo
    printf "serve-cluster: replication on — resumed %.1f%% pre-kill vs %.1f%% post-kill\n", erate, lrate
    on_fb = lo - lr; off_fb = flo - flr
    printf "serve-cluster: post-kill full-handshake fallbacks: %d with replication, %d without\n", on_fb, off_fb
    if (lrate < erate - 10) exit 1   # replication must hold the post-kill rate
    if (off_fb < 1) exit 1           # replication-off must reproduce the old fallback
    if (on_fb > off_fb) exit 1       # replication must never fall back more than off
    exit 0
}' || {
    echo "serve-cluster: replicated resumption did not survive the node kill" >&2
    grep -E '"(early|late)_(ok|resumed|resume_asked)":' "$TMP/report_repl_on.json" >&2 || true
    grep -E '"(early|late)_(ok|resumed|resume_asked)":' "$TMP/report_repl_off.json" >&2 || true
    exit 1
}
# The survivors must have actually replicated (push or pull), and the
# routing tier must have failed resumes over to ring successors.
grep -h '^wispd: replication' "$TMP/node_d2_on.log" "$TMP/node_d3_on.log" \
    | awk '{pushed += $4} END {exit !(pushed >= 1)}' || {
    echo "serve-cluster: no session secrets were replicated in the on leg" >&2
    grep -h 'replication' "$TMP"/node_d*_on.log >&2 || true
    exit 1
}
grep -Eq '^wispgw_resume_failover_total [1-9]' "$TMP/gw_d_on.log" || {
    echo "serve-cluster: no resume was failed over to a ring successor" >&2
    grep -E '^wispgw_' "$TMP/gw_d_on.log" >&2 || true
    exit 1
}
# Fold the on-leg replication counters into the phase B benchmark record
# so BENCH_cluster.json carries the replication health of the same build.
repl_line="$(grep -h '^wispd: replication' "$TMP/node_d2_on.log" "$TMP/node_d3_on.log" \
    | awk '{p += $4; d += $6; f += $8; m += $10} END {
        printf "  \"replication\": {\"pushed\": %d, \"dropped\": %d, \"fetched\": %d, \"fetch_miss\": %d},", p, d, f, m}')"
awk -v line="$repl_line" 'NR == 1 { print; print line; next } { print }' \
    "$BENCH_CLUSTER_JSON" >"$TMP/bench_with_repl.json"
mv "$TMP/bench_with_repl.json" "$BENCH_CLUSTER_JSON"
echo "serve-cluster: phase D ok — replicated sessions resumed across the kill"
echo "serve-cluster: ok"
