#!/bin/sh
# serve_bench.sh — boot wispd with cost-aware dispatch, replay a
# heterogeneous ssl+record mix with deadlines through wispload, and
# assert the dispatch invariants: zero payload mismatches (wispload exits
# non-zero on any) and zero sheds issued while a shard sat idle.
# Exits non-zero on any violation or unclean drain.
set -eu

BIN="${BIN:-bin}"
TMP="$(mktemp -d)"
WISPD_PID=""
trap 'status=$?; [ -n "$WISPD_PID" ] && kill "$WISPD_PID" 2>/dev/null || true; rm -rf "$TMP"; exit $status' EXIT INT TERM

"$BIN/wispd" -addr 127.0.0.1:0 -addrfile "$TMP/addr" -shards 4 -dispatch cost -metrics >"$TMP/wispd.log" 2>&1 &
WISPD_PID=$!

# Wait for the daemon to publish its bound address.
i=0
while [ ! -s "$TMP/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-bench: wispd never came up" >&2
        cat "$TMP/wispd.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR="$(cat "$TMP/addr")"
echo "serve-bench: wispd on $ADDR (4 shards, cost dispatch)"

# Heterogeneous mix: full SSL transactions (one RSA private-key op each)
# interleaved with cheap record ops, every request deadline-bearing, with
# client retries armed.  The service-time spread is the paper's Table 1
# asymmetry; cost-aware dispatch must keep record ops off the loaded
# shards.
"$BIN/wispload" -addr "$ADDR" -clients 6 -n 20 -ops ssl,record \
    -mix 1k,4k,16k -deadline-us 30000000 -retries 3 -json >"$TMP/report.json"

grep -q '"mismatches": 0' "$TMP/report.json" || {
    echo "serve-bench: payload mismatches detected" >&2
    exit 1
}
grep -q '"shed_while_idle": 0' "$TMP/report.json" || {
    echo "serve-bench: requests were shed while a shard sat idle" >&2
    grep -E '"shed|"steals|"redirects' "$TMP/report.json" >&2 || true
    exit 1
}
echo "serve-bench: zero mismatches, zero sheds-with-idle-shards"
grep -E '"(steals|redirects|retries|hedges)":' "$TMP/report.json" | head -4 || true

# Graceful drain: SIGTERM, then require a clean exit and the drain banner.
kill -TERM "$WISPD_PID"
wait "$WISPD_PID"
WISPD_PID=""
grep -q "drained cleanly" "$TMP/wispd.log" || {
    echo "serve-bench: daemon did not drain cleanly" >&2
    cat "$TMP/wispd.log" >&2
    exit 1
}
echo "serve-bench: ok"
