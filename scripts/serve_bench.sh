#!/bin/sh
# serve_bench.sh — two-phase serving benchmark.
#
# Phase 1 boots wispd with cost-aware dispatch and replays a heterogeneous
# ssl+record mix with deadlines through wispload, asserting the dispatch
# invariants: zero payload mismatches (wispload exits non-zero on any) and
# zero sheds issued while a shard sat idle.
#
# Phase 2 is the session-resumption A/B: the same handshake workload runs
# against a fresh daemon twice — resume-ratio 0 and resume-ratio 0.9 —
# and benchcmp asserts the abbreviated-handshake class's p99 beats the
# full-handshake baseline p99, with zero digest mismatches in both runs.
# The resume-on record is written to $BENCH_JSON (default BENCH_serve.json
# in the working directory) for the CI regression gate.
#
# Phase 3 is the batched-RSA A/B: the same rsa-decrypt burst runs against
# a one-shard daemon with -batch-width 1 (scalar) and -batch-width 4
# (lockstep engine fusion), same seeds; benchcmp asserts the batched run
# delivers higher throughput with zero digest mismatches in both runs.
#
# On failure, logs and reports are copied to $ARTIFACT_DIR when set (CI
# uploads them).  Exits non-zero on any violation or unclean drain.
set -eu

BIN="${BIN:-bin}"
BENCH_JSON="${BENCH_JSON:-BENCH_serve.json}"
TMP="$(mktemp -d)"
WISPD_PID=""

collect_artifacts() {
    if [ -n "${ARTIFACT_DIR:-}" ]; then
        mkdir -p "$ARTIFACT_DIR"
        cp "$TMP"/*.log "$TMP"/*.json "$ARTIFACT_DIR"/ 2>/dev/null || true
    fi
}
trap 'status=$?; [ -n "$WISPD_PID" ] && kill "$WISPD_PID" 2>/dev/null || true; [ "$status" -ne 0 ] && collect_artifacts; rm -rf "$TMP"; exit $status' EXIT INT TERM

# boot_wispd LOGNAME ARGS... — start a daemon, wait for its address file.
boot_wispd() {
    log="$1"; shift
    : >"$TMP/addr"
    "$BIN/wispd" -addr 127.0.0.1:0 -addrfile "$TMP/addr" "$@" >"$TMP/$log" 2>&1 &
    WISPD_PID=$!
    i=0
    while [ ! -s "$TMP/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "serve-bench: wispd never came up" >&2
            cat "$TMP/$log" >&2
            exit 1
        fi
        sleep 0.1
    done
    ADDR="$(cat "$TMP/addr")"
}

# drain_wispd LOGNAME — SIGTERM, clean exit, drain banner required.
drain_wispd() {
    kill -TERM "$WISPD_PID"
    wait "$WISPD_PID"
    WISPD_PID=""
    grep -q "drained cleanly" "$TMP/$1" || {
        echo "serve-bench: daemon did not drain cleanly" >&2
        cat "$TMP/$1" >&2
        exit 1
    }
}

# ---- Phase 1: heterogeneous mix, dispatch invariants ----
boot_wispd wispd.log -shards 4 -dispatch cost -metrics
echo "serve-bench: wispd on $ADDR (4 shards, cost dispatch)"

# Heterogeneous mix: full SSL transactions (one RSA private-key op each)
# interleaved with cheap record ops, every request deadline-bearing, with
# client retries armed.  The service-time spread is the paper's Table 1
# asymmetry; cost-aware dispatch must keep record ops off the loaded
# shards.
"$BIN/wispload" -addr "$ADDR" -clients 6 -n 20 -ops ssl,record \
    -mix 1k,4k,16k -deadline-us 30000000 -retries 3 -json >"$TMP/report.json"

grep -q '"mismatches": 0' "$TMP/report.json" || {
    echo "serve-bench: payload mismatches detected" >&2
    exit 1
}
grep -q '"shed_while_idle": 0' "$TMP/report.json" || {
    echo "serve-bench: requests were shed while a shard sat idle" >&2
    grep -E '"shed|"steals|"redirects' "$TMP/report.json" >&2 || true
    exit 1
}
echo "serve-bench: zero mismatches, zero sheds-with-idle-shards"
grep -E '"(steals|redirects|retries|hedges)":' "$TMP/report.json" | head -4 || true

drain_wispd wispd.log
echo "serve-bench: phase 1 ok"

# ---- Phase 2: session-resumption A/B on the handshake workload ----
# Same seed, same load shape; only the resume ratio differs.  Handshake
# ops isolate the path resumption amortizes (one RSA private-key op per
# full handshake, none per abbreviated one).
boot_wispd wispd_off.log -shards 4 -dispatch cost -seed 1 -metrics
echo "serve-bench: resume-off run on $ADDR"
"$BIN/wispload" -addr "$ADDR" -clients 6 -n 30 -ops handshake -mix 1k \
    -resume-ratio 0 -seed 2 -bench-out "$TMP/bench_off.json" >"$TMP/load_off.log"
drain_wispd wispd_off.log

boot_wispd wispd_on.log -shards 4 -dispatch cost -seed 1 -metrics
echo "serve-bench: resume-on run on $ADDR (ratio 0.9)"
"$BIN/wispload" -addr "$ADDR" -clients 6 -n 30 -ops handshake -mix 1k \
    -resume-ratio 0.9 -seed 2 -bench-out "$TMP/bench_on.json" >"$TMP/load_on.log"
drain_wispd wispd_on.log

grep -E 'resumption|session cache' "$TMP/load_on.log" || true
"$BIN/benchcmp" -baseline "$TMP/bench_off.json" -current "$TMP/bench_on.json" \
    -assert-p99-lt 'handshake+resumed<handshake'
cp "$TMP/bench_on.json" "$BENCH_JSON"
echo "serve-bench: resumed-handshake p99 beats full-handshake baseline; record written to $BENCH_JSON"
echo "serve-bench: phase 2 ok"

# ---- Phase 3: batched-RSA A/B on a private-key-op burst ----
# One shard so concurrent decrypts queue into same-op groups; only the
# batch width differs between the runs.
boot_wispd wispd_bw1.log -shards 1 -dispatch cost -seed 1 -batch-width 1 -batch-gather-us 3000 -metrics
echo "serve-bench: batch-width-1 (scalar) run on $ADDR"
"$BIN/wispload" -addr "$ADDR" -clients 8 -n 40 -ops rsa-decrypt -mix 1k \
    -seed 3 -bench-out "$TMP/bench_bw1.json" >"$TMP/load_bw1.log"
drain_wispd wispd_bw1.log

boot_wispd wispd_bw4.log -shards 1 -dispatch cost -seed 1 -batch-width 4 -batch-gather-us 3000 -metrics
echo "serve-bench: batch-width-4 (lockstep) run on $ADDR"
"$BIN/wispload" -addr "$ADDR" -clients 8 -n 40 -ops rsa-decrypt -mix 1k \
    -seed 3 -bench-out "$TMP/bench_bw4.json" >"$TMP/load_bw4.log"
drain_wispd wispd_bw4.log

grep -E 'rsa_ops_(batched|scalar)_total|rsa_batch_width' "$TMP/wispd_bw4.log" || true
grep -qE 'rsa_ops_batched_total [1-9]' "$TMP/wispd_bw4.log" || {
    echo "serve-bench: batch-width-4 run never engaged the batched engine" >&2
    exit 1
}
"$BIN/benchcmp" -baseline "$TMP/bench_bw1.json" -current "$TMP/bench_bw4.json" \
    -assert-rps-gt -rps-factor 1.05
echo "serve-bench: batched dispatch beats scalar throughput by >5% with zero mismatches"
echo "serve-bench: ok"
