#!/bin/sh
# serve_smoke.sh — boot wispd, serve 100 mixed Figure 8 transactions at 4
# concurrent clients through wispload, then drain the daemon cleanly.
# Exits non-zero on any payload mismatch, load failure or unclean drain.
set -eu

BIN="${BIN:-bin}"
TMP="$(mktemp -d)"
WISPD_PID=""

# On failure, copy logs to $ARTIFACT_DIR when set (CI uploads them).
collect_artifacts() {
    if [ -n "${ARTIFACT_DIR:-}" ]; then
        mkdir -p "$ARTIFACT_DIR"
        cp "$TMP"/*.log "$TMP"/*.json "$ARTIFACT_DIR"/ 2>/dev/null || true
    fi
}
trap 'status=$?; [ -n "$WISPD_PID" ] && kill "$WISPD_PID" 2>/dev/null || true; [ "$status" -ne 0 ] && collect_artifacts; rm -rf "$TMP"; exit $status' EXIT INT TERM

"$BIN/wispd" -addr 127.0.0.1:0 -addrfile "$TMP/addr" -metrics >"$TMP/wispd.log" 2>&1 &
WISPD_PID=$!

# Wait for the daemon to publish its bound address.
i=0
while [ ! -s "$TMP/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: wispd never came up" >&2
        cat "$TMP/wispd.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR="$(cat "$TMP/addr")"
echo "serve-smoke: wispd on $ADDR"

# 4 clients x 25 transactions = 100 served requests over the Figure 8 mix.
"$BIN/wispload" -addr "$ADDR" -clients 4 -n 25 -mix 1k,4k,16k,32k

# Graceful drain: SIGTERM, then require a clean exit and the drain banner.
kill -TERM "$WISPD_PID"
wait "$WISPD_PID"
WISPD_PID=""
grep -q "drained cleanly" "$TMP/wispd.log" || {
    echo "serve-smoke: daemon did not drain cleanly" >&2
    cat "$TMP/wispd.log" >&2
    exit 1
}
grep "drained cleanly" "$TMP/wispd.log"
echo "serve-smoke: ok"
