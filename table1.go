package wisp

import (
	"fmt"
	"math/rand"
	"strings"

	"wisp/internal/aescipher"
	"wisp/internal/descipher"
	"wisp/internal/kernels"
	"wisp/internal/rsakey"
	"wisp/internal/sim"
)

// Table1Row is one line of the paper's Table 1: an algorithm's cost on the
// base core and on the extended core, plus the resulting speedup.  Cipher
// rows report cycles/byte; RSA rows report cycles per operation.
type Table1Row struct {
	Algorithm string
	Unit      string // "cycles/byte" or "cycles/op"
	Base      float64
	Optimized float64
}

// Speedup returns Base / Optimized.
func (r Table1Row) Speedup() float64 {
	if r.Optimized == 0 {
		return 0
	}
	return r.Base / r.Optimized
}

// Scratch addresses for cipher measurements (above kernel data images).
const (
	t1Src = 0x70000
	t1Dst = 0x72000
	t1Key = 0x74000
)

// measureBlocks runs `fn` on `cpu` over blocks blocks and returns average
// cycles per byte.
func measureCipher(cpu *sim.CPU, fn string, blockBytes, blocks int, ks []uint32, src []byte) (float64, error) {
	if err := cpu.WriteBytes(t1Src, src); err != nil {
		return 0, err
	}
	if err := cpu.WriteWords(t1Key, ks); err != nil {
		return 0, err
	}
	var total uint64
	for b := 0; b < blocks; b++ {
		_, cycles, err := cpu.Call(fn, t1Dst, t1Src, t1Key)
		if err != nil {
			return 0, err
		}
		total += cycles
	}
	return float64(total) / float64(blocks*blockBytes), nil
}

// MeasureDES measures single-DES encryption on both cores (cycles/byte).
func (p *Platform) MeasureDES() (Table1Row, error) {
	rng := rand.New(rand.NewSource(p.opts.Seed + 10))
	key := make([]byte, 8)
	blk := make([]byte, 8)
	rng.Read(key)
	rng.Read(blk)
	c, err := descipher.NewCipher(key)
	if err != nil {
		return Table1Row{}, err
	}
	baseCPU, err := p.cpu(kernels.DESBase())
	if err != nil {
		return Table1Row{}, err
	}
	tieCPU, err := p.cpu(kernels.DESTIE())
	if err != nil {
		return Table1Row{}, err
	}
	base, err := measureCipher(baseCPU, "des_block", 8, 4, kernels.PrepDESKeyScheduleBase(c, false), blk)
	if err != nil {
		return Table1Row{}, err
	}
	opt, err := measureCipher(tieCPU, "des_block", 8, 4, kernels.PrepDESKeyScheduleTIE(c, false), blk)
	if err != nil {
		return Table1Row{}, err
	}
	return Table1Row{Algorithm: "DES enc./dec.", Unit: "cycles/byte", Base: base, Optimized: opt}, nil
}

// Measure3DES measures triple-DES encryption on both cores (cycles/byte).
func (p *Platform) Measure3DES() (Table1Row, error) {
	rng := rand.New(rand.NewSource(p.opts.Seed + 11))
	key := make([]byte, 24)
	blk := make([]byte, 8)
	rng.Read(key)
	rng.Read(blk)
	c, err := descipher.NewTripleCipher(key)
	if err != nil {
		return Table1Row{}, err
	}
	baseCPU, err := p.cpu(kernels.DESBase())
	if err != nil {
		return Table1Row{}, err
	}
	tieCPU, err := p.cpu(kernels.DESTIE())
	if err != nil {
		return Table1Row{}, err
	}
	base, err := measureCipher(baseCPU, "des3_block", 8, 4, kernels.Prep3DESKeyScheduleBase(c, false), blk)
	if err != nil {
		return Table1Row{}, err
	}
	opt, err := measureCipher(tieCPU, "des3_block", 8, 4, kernels.Prep3DESKeyScheduleTIE(c, false), blk)
	if err != nil {
		return Table1Row{}, err
	}
	return Table1Row{Algorithm: "3DES enc./dec.", Unit: "cycles/byte", Base: base, Optimized: opt}, nil
}

// MeasureAES measures AES-128 encryption on both cores (cycles/byte).
func (p *Platform) MeasureAES() (Table1Row, error) {
	rng := rand.New(rand.NewSource(p.opts.Seed + 12))
	key := make([]byte, 16)
	blk := make([]byte, 16)
	rng.Read(key)
	rng.Read(blk)
	c, err := aescipher.NewCipher(key)
	if err != nil {
		return Table1Row{}, err
	}
	baseCPU, err := p.cpu(kernels.AESBase())
	if err != nil {
		return Table1Row{}, err
	}
	tieCPU, err := p.cpu(kernels.AESTIE())
	if err != nil {
		return Table1Row{}, err
	}
	ks := kernels.PrepAESKeySchedule(c)
	base, err := measureCipher(baseCPU, "aes_encrypt", 16, 2, ks, blk)
	if err != nil {
		return Table1Row{}, err
	}
	opt, err := measureCipher(tieCPU, "aes_encrypt", 16, 2, ks, blk)
	if err != nil {
		return Table1Row{}, err
	}
	return Table1Row{Algorithm: "AES enc./dec.", Unit: "cycles/byte", Base: base, Optimized: opt}, nil
}

// MeasureRSAEncrypt compares the public-key operation before and after the
// co-design: baseline software on the base core versus the explored
// algorithm on the extended core.
func (p *Platform) MeasureRSAEncrypt() (Table1Row, error) {
	base, err := p.EstimateRSAEncrypt(p.BaseModels, BaselineExpConfig)
	if err != nil {
		return Table1Row{}, err
	}
	opt, err := p.EstimateRSAEncrypt(p.TIEModels, OptimizedExpConfig)
	if err != nil {
		return Table1Row{}, err
	}
	return Table1Row{Algorithm: "RSA enc.", Unit: "cycles/op", Base: base, Optimized: opt}, nil
}

// MeasureRSADecrypt compares the private-key operation: the baseline uses
// no CRT; the optimized platform uses Garner's CRT.
func (p *Platform) MeasureRSADecrypt() (Table1Row, error) {
	base, err := p.EstimateRSADecrypt(p.BaseModels, BaselineExpConfig, rsakey.CRTNone)
	if err != nil {
		return Table1Row{}, err
	}
	opt, err := p.EstimateRSADecrypt(p.TIEModels, OptimizedExpConfig, rsakey.CRTGarner)
	if err != nil {
		return Table1Row{}, err
	}
	return Table1Row{Algorithm: "RSA dec.", Unit: "cycles/op", Base: base, Optimized: opt}, nil
}

// MeasureMD5 measures the MD5 compression kernel on the base core
// (cycles/byte).  MD5 is not accelerated — it feeds the SSL record-layer
// MAC cost, part of the miscellaneous share of Figure 8.
func (p *Platform) MeasureMD5() (float64, error) {
	cpu, err := p.cpu(kernels.MD5Base())
	if err != nil {
		return 0, err
	}
	if err := cpu.WriteWords(t1Key, []uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476}); err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(p.opts.Seed + 13))
	blk := make([]byte, 64)
	rng.Read(blk)
	if err := cpu.WriteBytes(t1Src, blk); err != nil {
		return 0, err
	}
	var total uint64
	const blocks = 4
	for i := 0; i < blocks; i++ {
		_, cycles, err := cpu.Call("md5_block", t1Key, t1Src)
		if err != nil {
			return 0, err
		}
		total += cycles
	}
	return float64(total) / (blocks * 64), nil
}

// Table1 measures all five rows of the paper's Table 1.
func (p *Platform) Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, f := range []func() (Table1Row, error){
		p.MeasureDES, p.Measure3DES, p.MeasureAES,
		p.MeasureRSAEncrypt, p.MeasureRSADecrypt,
	} {
		r, err := f()
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// RenderTable1 formats the rows like the paper's table.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %14s %14s %9s  %s\n", "algorithm", "base", "optimized", "speedup", "unit")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %14.1f %14.1f %8.1fX  %s\n",
			r.Algorithm, r.Base, r.Optimized, r.Speedup(), r.Unit)
	}
	return b.String()
}
