module wisp

go 1.22
