// The benchmark harness regenerates every table and figure of the paper's
// evaluation section.  Absolute cycle counts come from this repository's
// xt32 substrate rather than the authors' Xtensa testbed, so EXPERIMENTS.md
// compares shapes (who wins, by roughly what factor) rather than raw
// numbers.  Custom metrics are attached to each benchmark via
// b.ReportMetric; run with:
//
//	go test -bench=. -benchmem
package wisp

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"wisp/internal/aescipher"
	"wisp/internal/descipher"

	"wisp/internal/adcurve"
	"wisp/internal/instrsel"
	"wisp/internal/kernels"
	"wisp/internal/macromodel"
	"wisp/internal/mpz"
	"wisp/internal/rsakey"
	"wisp/internal/sim"
)

var (
	benchOnce sync.Once
	benchPlat *Platform
)

// benchPlatform builds the full-scale (1024-bit RSA) platform once.
func benchPlatform(b *testing.B) *Platform {
	b.Helper()
	benchOnce.Do(func() {
		p, err := New(Options{})
		if err != nil {
			panic(err)
		}
		benchPlat = p
	})
	return benchPlat
}

// --- Table 1 ---

func benchCipherRow(b *testing.B, measure func() (Table1Row, error)) {
	p := benchPlatform(b)
	_ = p
	var row Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		row, err = measure()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.Base, "base-"+unitSuffix(row.Unit))
	b.ReportMetric(row.Optimized, "opt-"+unitSuffix(row.Unit))
	b.ReportMetric(row.Speedup(), "speedup-x")
}

func unitSuffix(u string) string {
	if u == "cycles/byte" {
		return "c/B"
	}
	return "c/op"
}

func BenchmarkTable1DES(b *testing.B)        { benchCipherRow(b, benchPlatform(b).MeasureDES) }
func BenchmarkTable1TripleDES(b *testing.B)  { benchCipherRow(b, benchPlatform(b).Measure3DES) }
func BenchmarkTable1AES(b *testing.B)        { benchCipherRow(b, benchPlatform(b).MeasureAES) }
func BenchmarkTable1RSAEncrypt(b *testing.B) { benchCipherRow(b, benchPlatform(b).MeasureRSAEncrypt) }
func BenchmarkTable1RSADecrypt(b *testing.B) { benchCipherRow(b, benchPlatform(b).MeasureRSADecrypt) }

// --- Figure 8 ---

func BenchmarkFigure8SSL(b *testing.B) {
	p := benchPlatform(b)
	var rows []sslRow
	for i := 0; i < b.N; i++ {
		rs, err := p.Figure8(nil)
		if err != nil {
			b.Fatal(err)
		}
		rows = rows[:0]
		for _, r := range rs {
			rows = append(rows, sslRow{r.Bytes, r.Speedup})
		}
	}
	if len(rows) > 0 {
		b.ReportMetric(rows[0].speedup, "speedup-1KB-x")
		b.ReportMetric(rows[len(rows)-1].speedup, "speedup-32KB-x")
	}
}

type sslRow struct {
	bytes   int
	speedup float64
}

// --- Figure 5 ---

func BenchmarkFigure5ADCurves(b *testing.B) {
	p := benchPlatform(b)
	var f5 *Figure5Data
	var err error
	for i := 0; i < b.N; i++ {
		f5, err = p.Figure5(16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f5.AddN[0].Cycles, "addn-base-cycles")
	b.ReportMetric(f5.AddN[len(f5.AddN)-1].Cycles, "addn-best-cycles")
	b.ReportMetric(float64(len(f5.Root)), "root-pareto-points")
	b.ReportMetric(float64(len(f5.RootAll)-len(f5.Root)), "pruned-points")
}

// --- Figure 6 ---

func BenchmarkFigure6Reduction(b *testing.B) {
	p := benchPlatform(b)
	var raw, reduced int
	var err error
	for i := 0; i < b.N; i++ {
		raw, reduced, err = p.Figure6(16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(raw), "raw-points")
	b.ReportMetric(float64(reduced), "reduced-points")
}

// --- Figure 4 ---

func BenchmarkFigure4CallGraph(b *testing.B) {
	p := benchPlatform(b)
	var edges int
	for i := 0; i < b.N; i++ {
		g, err := p.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		edges = 0
		for _, n := range g.Nodes() {
			edges += len(g.Callees(n))
		}
	}
	b.ReportMetric(float64(edges), "graph-edges")
}

// --- Section 4.3 exploration ---

func BenchmarkSection43Exploration(b *testing.B) {
	p := benchPlatform(b)
	var rep *ExplorationReport
	var err error
	for i := 0; i < b.N; i++ {
		// 256-bit RSA exercises the full 450-candidate space in seconds;
		// the speed ratio and error statistics scale with key size.
		rep, err = p.Section43(256, 4, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Candidates), "candidates")
	b.ReportMetric(rep.MeanAbsErrPct, "mae-pct")
	b.ReportMetric(rep.SpeedRatio, "est-vs-iss-x")
}

// BenchmarkSection43ExplorationParallel tracks the parallel exploration
// engine: the 450-candidate space fanned out across GOMAXPROCS workers,
// with the sequential pass measured once as the speedup baseline.  On a
// single-core host the speedup metric sits near 1×; the ranked output is
// asserted identical to sequential either way.
func BenchmarkSection43ExplorationParallel(b *testing.B) {
	p := benchPlatform(b)
	seqStart := time.Now()
	seqRep, err := p.Section43Parallel(256, 0, 2, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	seqTime := time.Since(seqStart)
	b.ResetTimer()
	var rep *ExplorationReport
	for i := 0; i < b.N; i++ {
		rep, err = p.Section43Parallel(256, 0, 2, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i := range rep.Results {
		if rep.Results[i].Config != seqRep.Results[i].Config ||
			rep.Results[i].EstCycles != seqRep.Results[i].EstCycles {
			b.Fatalf("rank %d: parallel %v disagrees with sequential %v",
				i, rep.Results[i].Config, seqRep.Results[i].Config)
		}
	}
	b.ReportMetric(float64(rep.Workers), "workers")
	b.ReportMetric(seqTime.Seconds()/rep.EstimateTime.Seconds(), "parallel-speedup-x")
	b.ReportMetric(100*rep.PriceCache.HitRate(), "price-memo-hit-pct")
}

// BenchmarkFigure5ADCurvesParallel tracks the parallel per-routine curve
// formulation (each ISS measurement on its own simulator instance).
func BenchmarkFigure5ADCurvesParallel(b *testing.B) {
	p := benchPlatform(b)
	seqStart := time.Now()
	seq, err := p.Figure5Parallel(16, 1)
	if err != nil {
		b.Fatal(err)
	}
	seqTime := time.Since(seqStart)
	b.ResetTimer()
	var f5 *Figure5Data
	var par time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		f5, err = p.Figure5Parallel(16, 0)
		if err != nil {
			b.Fatal(err)
		}
		par = time.Since(start)
	}
	if f5.Root.String() != seq.Root.String() {
		b.Fatal("parallel root curve disagrees with sequential")
	}
	b.ReportMetric(seqTime.Seconds()/par.Seconds(), "parallel-speedup-x")
	b.ReportMetric(float64(len(f5.Root)), "root-pareto-points")
}

// --- Figure 1 ---

func BenchmarkFigure1Gap(b *testing.B) {
	p := benchPlatform(b)
	var out string
	var err error
	for i := 0; i < b.N; i++ {
		out, err = p.Figure1()
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(out) == 0 {
		b.Fatal("empty gap report")
	}
	rows := GapRows(178)
	b.ReportMetric(rows[len(rows)-1].Gap(), "gap-3G-x")
}

// BenchmarkProtocolComparison evaluates the platform across the protocol
// stack (SSL vs WTLS vs IPsec-ESP) at a 32KB transfer.
func BenchmarkProtocolComparison(b *testing.B) {
	p := benchPlatform(b)
	var speedups map[string]float64
	var err error
	for i := 0; i < b.N; i++ {
		speedups, err = p.ProtocolComparison(32 << 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	for name, s := range speedups {
		b.ReportMetric(s, name+"-x")
	}
}

// BenchmarkTable1AESDecrypt measures the inverse cipher on both cores —
// the slower direction of AES in naive software.
func BenchmarkTable1AESDecrypt(b *testing.B) {
	_ = benchPlatform(b)
	baseCPU, err := kernels.AESDecBase().Build(sim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	tieCPU, err := kernels.AESDecTIE().Build(sim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	key := make([]byte, 16)
	blk := make([]byte, 16)
	rng.Read(key)
	rng.Read(blk)
	c, err := newAESCipher(key)
	if err != nil {
		b.Fatal(err)
	}
	ks := kernels.PrepAESKeyScheduleDec(c)
	var baseCyc, tieCyc uint64
	for i := 0; i < b.N; i++ {
		for _, cpu := range []*sim.CPU{baseCPU, tieCPU} {
			if err := cpu.WriteBytes(0x70000, blk); err != nil {
				b.Fatal(err)
			}
			if err := cpu.WriteWords(0x74000, ks); err != nil {
				b.Fatal(err)
			}
		}
		if _, baseCyc, err = baseCPU.Call("aes_decrypt", 0x72000, 0x70000, 0x74000); err != nil {
			b.Fatal(err)
		}
		if _, tieCyc, err = tieCPU.Call("aes_decrypt", 0x72000, 0x70000, 0x74000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(baseCyc)/16, "base-c/B")
	b.ReportMetric(float64(tieCyc)/16, "opt-c/B")
	b.ReportMetric(float64(baseCyc)/float64(tieCyc), "speedup-x")
}

// --- Ablations (design choices called out in DESIGN.md §5) ---

// BenchmarkAblationGranularity contrasts the two custom-instruction
// granularities the platform uses: the coarse round-level DES datapath
// against the fine-grained AES S-box/MixColumns units.
func BenchmarkAblationGranularity(b *testing.B) {
	p := benchPlatform(b)
	var des, aes Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		if des, err = p.MeasureDES(); err != nil {
			b.Fatal(err)
		}
		if aes, err = p.MeasureAES(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(des.Speedup(), "round-level-x")
	b.ReportMetric(aes.Speedup(), "fine-grained-x")
}

// BenchmarkAblationDominance quantifies the Cartesian-product blowup the
// dominance/sharing reduction prevents during curve combination.
func BenchmarkAblationDominance(b *testing.B) {
	p := benchPlatform(b)
	f5, err := p.Figure5(16)
	if err != nil {
		b.Fatal(err)
	}
	var withRed, withoutRed int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		withRed = len(adcurve.Combine(f5.AddN, f5.AddMul))
		withoutRed = len(adcurve.CombineRaw(f5.AddN, f5.AddMul))
	}
	b.ReportMetric(float64(withoutRed), "raw-points")
	b.ReportMetric(float64(withRed), "reduced-points")
}

// BenchmarkAblationRegressionBasis compares macro-model bases on
// mpn_divrem_1 — the one kernel whose cycle count is data-dependent (the
// conditional subtract in the bit-serial divider), so the fit error is
// non-trivial and the basis choice matters.
func BenchmarkAblationRegressionBasis(b *testing.B) {
	cpu, err := kernels.MPNBase().Build(sim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	samples, err := macromodel.Characterize([]int{1, 2, 3, 5, 8, 12, 16, 24, 32}, 5, func(n int) (uint64, error) {
		return kernels.RunMPNRoutineISS(cpu, rng, "mpn_divrem_1", n)
	})
	if err != nil {
		b.Fatal(err)
	}
	var con, lin, quad, pw *macromodel.Model
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		con, _ = macromodel.Fit("divrem", samples, macromodel.BasisConstant)
		lin, _ = macromodel.Fit("divrem", samples, macromodel.BasisLinear)
		quad, _ = macromodel.Fit("divrem", samples, macromodel.BasisQuadratic)
		pw, _ = macromodel.Fit("divrem", samples, macromodel.BasisPiecewiseLinear)
	}
	b.ReportMetric(con.MAEPct, "constant-mae-pct")
	b.ReportMetric(lin.MAEPct, "linear-mae-pct")
	b.ReportMetric(quad.MAEPct, "quadratic-mae-pct")
	b.ReportMetric(pw.MAEPct, "piecewise-mae-pct")
}

// BenchmarkAblationModMul prices RSA decryption under each of the five
// modular-multiplication algorithms (base core, Garner CRT, window 4).
func BenchmarkAblationModMul(b *testing.B) {
	p := benchPlatform(b)
	results := make(map[string]float64)
	for i := 0; i < b.N; i++ {
		for _, alg := range mpz.ModMulAlgs {
			cfg := mpz.ExpConfig{Alg: alg, WindowBits: 4, Cache: mpz.CacheReducer}
			cycles, err := p.EstimateRSADecrypt(p.BaseModels, cfg, rsakey.CRTGarner)
			if err != nil {
				b.Fatal(err)
			}
			results[alg.String()] = cycles
		}
	}
	for name, cycles := range results {
		b.ReportMetric(cycles/1e6, name+"-Mcycles")
	}
}

// BenchmarkAblationCRT compares the three CRT implementations.
func BenchmarkAblationCRT(b *testing.B) {
	p := benchPlatform(b)
	results := make(map[string]float64)
	for i := 0; i < b.N; i++ {
		for _, crt := range rsakey.CRTModes {
			cycles, err := p.EstimateRSADecrypt(p.BaseModels, OptimizedExpConfig, crt)
			if err != nil {
				b.Fatal(err)
			}
			results[crt.String()] = cycles
		}
	}
	for name, cycles := range results {
		b.ReportMetric(cycles/1e6, name+"-Mcycles")
	}
}

// BenchmarkAblationWindow sweeps the exponent window width.
func BenchmarkAblationWindow(b *testing.B) {
	p := benchPlatform(b)
	var w1, w5 float64
	for i := 0; i < b.N; i++ {
		for _, w := range []int{1, 5} {
			cfg := mpz.ExpConfig{Alg: mpz.ModMulMontgomery, WindowBits: w, Cache: mpz.CacheReducer}
			cycles, err := p.EstimateRSADecrypt(p.BaseModels, cfg, rsakey.CRTGarner)
			if err != nil {
				b.Fatal(err)
			}
			if w == 1 {
				w1 = cycles
			} else {
				w5 = cycles
			}
		}
	}
	b.ReportMetric(w1/1e6, "w1-Mcycles")
	b.ReportMetric(w5/1e6, "w5-Mcycles")
	b.ReportMetric(w1/w5, "w1-over-w5")
}

// BenchmarkAblationVectorWidth sweeps the TIE vector-adder width on the
// mpn_add_n kernel (the local A-D tradeoff of §3.3) and runs the global
// selection against an area budget sweep.
func BenchmarkAblationVectorWidth(b *testing.B) {
	p := benchPlatform(b)
	var f5 *Figure5Data
	var err error
	for i := 0; i < b.N; i++ {
		f5, err = p.Figure5(16)
		if err != nil {
			b.Fatal(err)
		}
	}
	sels := instrsel.Sweep(f5.Root, []float64{0, 3000, 6000, 12000, 1e9})
	if len(sels) == 0 {
		b.Fatal("selection sweep empty")
	}
	b.ReportMetric(sels[0].Speedup(), "budget0-x")
	b.ReportMetric(sels[len(sels)-1].Speedup(), "budget-max-x")
}

// newAESCipher wraps the internal constructor for the decrypt benchmark.
func newAESCipher(key []byte) (*aescipher.Cipher, error) { return aescipher.NewCipher(key) }

// BenchmarkAblationDCache measures the memory-system sensitivity of the
// table-driven base DES kernel: a small direct-mapped D-cache with a
// 20-cycle miss penalty versus the default single-cycle-hit memory.  The
// SP-box lookups and the generic permutation tables make software DES
// cache-hungry — part of why custom-instruction ROMs win.
func BenchmarkAblationDCache(b *testing.B) {
	measure := func(cfg sim.Config) float64 {
		cpu, err := kernels.DESBase().Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(14))
		key := make([]byte, 8)
		blk := make([]byte, 8)
		rng.Read(key)
		rng.Read(blk)
		c, err := newDESCipher(key)
		if err != nil {
			b.Fatal(err)
		}
		if err := cpu.WriteBytes(0x70000, blk); err != nil {
			b.Fatal(err)
		}
		if err := cpu.WriteWords(0x74000, kernels.PrepDESKeyScheduleBase(c, false)); err != nil {
			b.Fatal(err)
		}
		var total uint64
		const blocks = 3
		for i := 0; i < blocks; i++ {
			_, cyc, err := cpu.Call("des_block", 0x72000, 0x70000, 0x74000)
			if err != nil {
				b.Fatal(err)
			}
			total += cyc
		}
		return float64(total) / (blocks * 8)
	}
	var perfect, cached float64
	for i := 0; i < b.N; i++ {
		perfect = measure(sim.DefaultConfig())
		cfg := sim.DefaultConfig()
		cfg.DCache = &sim.CacheConfig{Lines: 64, LineBytes: 16, MissPenalty: 20}
		cached = measure(cfg)
	}
	b.ReportMetric(perfect, "perfect-mem-c/B")
	b.ReportMetric(cached, "small-dcache-c/B")
	b.ReportMetric(cached/perfect, "slowdown-x")
}

// newDESCipher wraps the internal constructor for the cache benchmark.
func newDESCipher(key []byte) (*descipher.Cipher, error) { return descipher.NewCipher(key) }

// BenchmarkEnergyDES evaluates the paper's deferred energy-efficiency
// claim: picojoules per byte for DES on both cores, from the dynamic
// instruction mix under the 0.18 µm energy model.
func BenchmarkEnergyDES(b *testing.B) {
	p := benchPlatform(b)
	var row EnergyRow
	var err error
	for i := 0; i < b.N; i++ {
		row, err = p.MeasureDESEnergy()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.BasePJ, "base-pJ/B")
	b.ReportMetric(row.OptPJ, "opt-pJ/B")
	b.ReportMetric(row.Improvement(), "energy-improvement-x")
}
