// Custom-instruction demo: formulates area–delay curves for the multi-
// precision leaf routines by measuring base and TIE kernel variants on the
// ISS (Figure 5), propagates them through a call graph (Equation 1),
// and selects the best instruction combination under an area budget
// (the paper's §3.3–3.4 flow).
//
//	go run ./examples/custom-instructions
package main

import (
	"fmt"
	"log"

	"wisp"
	"wisp/internal/instrsel"
)

func main() {
	p, err := wisp.New(wisp.Options{RSABits: 512})
	if err != nil {
		log.Fatal(err)
	}

	const n = 16 // operand size in limbs (512-bit vectors)
	f5, err := p.Figure5(n)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mpn_add_n A-D curve (n=%d):\n", n)
	for _, pt := range f5.AddN {
		fmt.Printf("  %-45s area %7.0f  cycles %5.0f\n", pt.Set.Key(), pt.Area(), pt.Cycles)
	}
	fmt.Printf("\nmpn_addmul_1 A-D curve (adder family shared with mpn_add_n):\n")
	for _, pt := range f5.AddMul {
		fmt.Printf("  %-45s area %7.0f  cycles %5.0f\n", pt.Set.Key(), pt.Area(), pt.Cycles)
	}

	raw, reduced, err := p.Figure6(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncombining the curves: %d Cartesian pairings reduce to %d design points\n", raw, reduced)
	fmt.Printf("(the paper's Figure 6 reduces 25 to 9 through instruction sharing and dominance)\n")

	fmt.Printf("\ncomposite root curve after Pareto pruning (%d of %d points survive):\n",
		len(f5.Root), len(f5.RootAll))
	for _, pt := range f5.Root {
		fmt.Printf("  %-45s area %7.0f  cycles %7.0f\n", pt.Set.Key(), pt.Area(), pt.Cycles)
	}

	fmt.Println("\nglobal selection across area budgets:")
	for _, budget := range []float64{0, 4000, 8000, 16000, 1e9} {
		sel, err := instrsel.MinCycles(f5.Root, budget)
		if err != nil {
			continue
		}
		fmt.Printf("  budget %8.0f gates: pick %-40s %.2fX\n",
			budget, sel.Point.Set.Key(), sel.Speedup())
	}
}
