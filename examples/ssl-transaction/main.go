// SSL transaction demo: runs the repository's functional miniature SSL —
// an RSA key-transport handshake followed by 3DES-CBC + HMAC-MD5 records —
// between a client and a server goroutine, then prints the platform's
// Figure 8 speedup estimate for the same transaction sizes.
//
//	go run ./examples/ssl-transaction
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"wisp"
	"wisp/internal/mpz"
	"wisp/internal/rsakey"
	"wisp/internal/ssl"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	serverKey, err := rsakey.GenerateKey(rng, 512)
	if err != nil {
		log.Fatal(err)
	}

	// --- functional handshake + record exchange ---
	clientT, serverT := ssl.Pipe()
	type result struct {
		sess *ssl.Session
		err  error
	}
	serverDone := make(chan result, 1)
	go func() {
		s, err := ssl.ServerHandshake(serverT, rand.New(rand.NewSource(2)), mpz.NewCtx(nil), serverKey)
		serverDone <- result{s, err}
	}()
	client, err := ssl.ClientHandshake(clientT, rand.New(rand.NewSource(3)), mpz.NewCtx(nil))
	if err != nil {
		log.Fatal("client handshake:", err)
	}
	sr := <-serverDone
	if sr.err != nil {
		log.Fatal("server handshake:", sr.err)
	}
	server := sr.sess
	fmt.Println("handshake complete: premaster exchanged under RSA, session keys derived")

	request := []byte("GET /balance HTTP/1.0\r\n\r\n")
	record, err := client.Seal(request)
	if err != nil {
		log.Fatal(err)
	}
	got, err := server.Open(record)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, request) {
		log.Fatal("payload corrupted")
	}
	fmt.Printf("client → server: %d payload bytes in a %d-byte protected record\n", len(request), len(record))

	response := bytes.Repeat([]byte("12345678"), 128) // 1 KB of "account data"
	record, err = server.Seal(response)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := client.Open(record); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server → client: %d payload bytes delivered and verified\n\n", len(response))

	// --- Figure 8: what the platform buys for such transactions ---
	p, err := wisp.New(wisp.Options{RSABits: 512})
	if err != nil {
		log.Fatal(err)
	}
	rows, err := p.Figure8(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("estimated SSL transaction speedup on the security processor (Figure 8):")
	for _, r := range rows {
		fmt.Printf("  %5dKB transaction: %.2fX\n", r.Bytes/1024, r.Speedup)
	}
}
