// Real-time video decryption demo — the application the paper's board
// prototype (Figure 7) demonstrated on an XT-2000 with an LCD panel.
//
// A stream of QCIF frames is encrypted with 3DES-CBC; the demo decrypts
// and integrity-checks every frame functionally (using the repository's
// own cipher), then evaluates — from ISS-measured cycle costs — whether
// the base core and the extended core can sustain the decryption at
// real-time rates.
//
//	go run ./examples/video-decrypt
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"wisp"
	"wisp/internal/blockmode"
	"wisp/internal/descipher"
)

const (
	frameW     = 176 // QCIF
	frameH     = 144
	bytesPP    = 2 // 16-bit pixels
	frameBytes = frameW * frameH * bytesPP
	frames     = 24
	targetFPS  = 15.0
	clockMHz   = 188.0
)

func main() {
	rng := rand.New(rand.NewSource(4))
	key := make([]byte, 24)
	iv := make([]byte, 8)
	rng.Read(key)
	rng.Read(iv)
	cipher, err := descipher.NewTripleCipher(key)
	if err != nil {
		log.Fatal(err)
	}

	// Functional path: encrypt a synthetic stream, then decrypt it frame
	// by frame as the "handset" would.
	fmt.Printf("decrypting %d QCIF frames (%d bytes each) of 3DES-CBC video...\n", frames, frameBytes)
	var failures int
	for f := 0; f < frames; f++ {
		frame := make([]byte, frameBytes)
		for i := range frame {
			frame[i] = byte(f + i) // synthetic pattern
		}
		ct := make([]byte, frameBytes)
		if err := blockmode.CBCEncrypt(cipher, iv, ct, frame); err != nil {
			log.Fatal(err)
		}
		pt := make([]byte, frameBytes)
		if err := blockmode.CBCDecrypt(cipher, iv, pt, ct); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(pt, frame) {
			failures++
		}
	}
	if failures > 0 {
		log.Fatalf("%d frames corrupted", failures)
	}
	fmt.Printf("all %d frames decrypted and verified\n\n", frames)

	// Performance path: can the handset keep up in real time?
	p, err := wisp.New(wisp.Options{RSABits: 512})
	if err != nil {
		log.Fatal(err)
	}
	row, err := p.Measure3DES()
	if err != nil {
		log.Fatal(err)
	}
	for _, core := range []struct {
		name string
		cpb  float64
	}{
		{"base xt32 core", row.Base},
		{"core + des_round datapath", row.Optimized},
	} {
		cyclesPerFrame := core.cpb * frameBytes
		fps := clockMHz * 1e6 / cyclesPerFrame
		verdict := "REAL TIME"
		if fps < targetFPS {
			verdict = fmt.Sprintf("too slow for %.0f fps", targetFPS)
		}
		fmt.Printf("%-28s %8.1f c/B → %7.2f fps  [%s]\n", core.name, core.cpb, fps, verdict)
	}
	fmt.Printf("\n(the paper's prototype demonstrated exactly this: software 3DES cannot\n" +
		"sustain video rates; the extended core decodes with headroom)\n")
}
