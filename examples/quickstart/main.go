// Quickstart: build the security processing platform, encrypt a DES block
// on the base core and on the extended core, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wisp"
)

func main() {
	// Building a platform characterizes the multi-precision kernels on
	// the cycle-accurate ISS for both the base core and the core with
	// the selected TIE extension — the one-time step of the paper's
	// methodology.
	p, err := wisp.New(wisp.Options{RSABits: 512})
	if err != nil {
		log.Fatal(err)
	}

	des, err := p.MeasureDES()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DES on the base xt32 core:      %6.1f cycles/byte\n", des.Base)
	fmt.Printf("DES with the des_round datapath: %6.1f cycles/byte\n", des.Optimized)
	fmt.Printf("speedup: %.1fX (paper: 31.0X)\n\n", des.Speedup())

	rsa, err := p.MeasureRSADecrypt()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RSA-512 decrypt, baseline software on the base core: %11.0f cycles\n", rsa.Base)
	fmt.Printf("RSA-512 decrypt, explored algorithm on the TIE core: %11.0f cycles\n", rsa.Optimized)
	fmt.Printf("speedup: %.1fX (paper: up to 66.4X at 1024 bits)\n\n", rsa.Speedup())

	ext := p.Ext
	fmt.Printf("mounted extension %q: %d custom instructions, %.0f gate equivalents\n",
		ext.Name, len(ext.Instrs()), ext.Gates())
}
