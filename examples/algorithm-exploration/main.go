// Algorithm exploration demo: prices the full 450-candidate modular-
// exponentiation design space (5 modular-multiplication algorithms ×
// 5 window sizes × 3 CRT implementations × 2 radixes × 3 caching options)
// with performance macro-models, exactly as the paper's §4.3 does —
// native execution instead of ISS runs.
//
//	go run ./examples/algorithm-exploration
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"wisp/internal/explore"
	"wisp/internal/kernels"
	"wisp/internal/rsakey"
	"wisp/internal/sim"
)

func main() {
	// One-time: characterize the library kernels on the ISS.
	fmt.Println("characterizing mpn kernels on the ISS...")
	models, err := kernels.CharacterizeMPNBase(sim.DefaultConfig(),
		[]int{1, 2, 4, 8, 16, 32}, 2, 1)
	if err != nil {
		log.Fatal(err)
	}

	key, err := rsakey.GenerateKey(rand.New(rand.NewSource(7)), 512)
	if err != nil {
		log.Fatal(err)
	}
	ex := explore.New(models, key, 7)

	space := explore.Space()
	fmt.Printf("evaluating %d candidates natively with macro-models...\n", len(space))
	start := time.Now()
	results, err := ex.EvaluateAll(space)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("done in %v (%.2f ms per candidate)\n\n", elapsed,
		elapsed.Seconds()*1000/float64(len(results)))

	fmt.Println("ten best candidates (RSA-512 decrypt, estimated target-core cycles):")
	for i := 0; i < 10 && i < len(results); i++ {
		r := results[i]
		fmt.Printf("  %2d. %-45v %12.0f cycles\n", i+1, r.Config, r.EstCycles)
	}
	worst := results[len(results)-1]
	fmt.Printf("\nworst: %v — %.0fX slower than the best\n",
		worst.Config, worst.EstCycles/results[0].EstCycles)

	// Ground truth: replay the winner's kernel trace on the ISS.
	best := results[0]
	rep, err := ex.ReplayISS(best.Config, sim.DefaultConfig(), 2, 99)
	if err != nil {
		log.Fatal(err)
	}
	errPct := 100 * abs(best.EstCycles-rep.Cycles) / rep.Cycles
	fmt.Printf("\nISS replay of the winner: %.0f cycles (macro-model error %.2f%%)\n", rep.Cycles, errPct)
	fmt.Printf("full ISS evaluation would take ≈%v per candidate vs %.2f ms with macro-models\n",
		rep.ProjectedFull.Round(time.Millisecond),
		elapsed.Seconds()*1000/float64(len(results)))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
