package wisp

import "testing"

func TestBatchFrontierShape(t *testing.T) {
	rep, err := testPlatform.BatchFrontier([]int{1, 2, 4, 8}, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 4 {
		t.Fatalf("points: %d, want 4", len(rep.Points))
	}
	for i, pt := range rep.Points {
		if pt.CyclesPerLane <= 0 {
			t.Errorf("width %d: nonpositive cycles %g", pt.Width, pt.CyclesPerLane)
		}
		if i > 0 {
			prev := rep.Points[i-1]
			// Wider lanes cost area and (under a serial fraction < 1) buy
			// per-lane cycles; both axes must be strictly monotone.
			if pt.AreaGates <= prev.AreaGates {
				t.Errorf("width %d: area %g not above width %d's %g",
					pt.Width, pt.AreaGates, prev.Width, prev.AreaGates)
			}
			if pt.CyclesPerLane >= prev.CyclesPerLane {
				t.Errorf("width %d: per-lane cycles %g not below width %d's %g",
					pt.Width, pt.CyclesPerLane, prev.Width, prev.CyclesPerLane)
			}
		}
	}
	if p1 := rep.Points[0]; p1.Width != 1 || p1.AreaGates != 0 || p1.Speedup != 1 {
		t.Errorf("width-1 point malformed: %+v", p1)
	}
	// Strictly monotone in both axes means every width is Pareto-optimal.
	if len(rep.Frontier) != 4 {
		t.Errorf("frontier has %d points, want 4", len(rep.Frontier))
	}
	for _, pt := range rep.Points {
		if !pt.OnFrontier {
			t.Errorf("width %d not marked on frontier", pt.Width)
		}
	}
	if len(rep.Selections) == 0 {
		t.Fatal("no selections")
	}
	last := rep.Selections[len(rep.Selections)-1]
	if want := rep.Points[3].Speedup; last.Speedup() < want*0.99 || last.Speedup() > want*1.01 {
		t.Errorf("largest-budget selection speedup %g, want ≈%g", last.Speedup(), want)
	}
}

func TestBatchFrontierRejectsBadWidth(t *testing.T) {
	if _, err := testPlatform.BatchFrontier([]int{0}, 512); err == nil {
		t.Fatal("width 0 accepted")
	}
}
