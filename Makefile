GO ?= go

.PHONY: all build test check race fuzz bench

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: static analysis plus the full test suite under the
# race detector.  The parallel exploration engine's determinism tests run
# worker pools concurrently here, so data races in the pricing memo, the
# A-D combination memo or the worker pool itself fail the build.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

race: check

# Short bursts of the native fuzz targets (differential vs math/big);
# the checked-in seed corpora under testdata/fuzz always run as part of
# plain `make test`.
fuzz:
	$(GO) test -fuzz FuzzMpnDiv -fuzztime 30s ./internal/mpn/
	$(GO) test -fuzz FuzzModMul -fuzztime 30s ./internal/mpz/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
