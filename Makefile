GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test check race lint fuzz fuzz-seeds cover bench bench-alloc bench-batch bins serve-smoke serve-bench serve-attack serve-cluster serve-adapt bench-json bench-check

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: static analysis plus the full test suite under the
# race detector.  The parallel exploration engine's determinism tests run
# worker pools concurrently here, so data races in the pricing memo, the
# A-D combination memo or the worker pool itself fail the build.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

race: check

# lint enforces formatting and (when installed) staticcheck.  CI installs
# staticcheck explicitly; locally the target degrades to gofmt-only so the
# repo never requires tools the environment lacks.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: these files need formatting:"; echo "$$out"; exit 1; fi
	@echo "gofmt: clean"
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... && echo "staticcheck: clean"; \
	else \
		echo "staticcheck: not installed, skipped (CI runs it)"; fi

# Bursts of the native fuzz targets (differential vs math/big); the
# nightly workflow raises FUZZTIME to 5m per target.  The target list is
# derived from `go test -list` so a new Fuzz* function is picked up here
# and in nightly.yml without editing either.  The checked-in seed corpora
# under testdata/fuzz always run as part of plain `make test`.
fuzz:
	@set -e; for pkg in $$($(GO) list ./...); do \
		for t in $$($(GO) test -list '^Fuzz' $$pkg | grep '^Fuzz' || true); do \
			echo "==> $$t ($$pkg)"; \
			$(GO) test -fuzz "^$$t$$" -fuzztime $(FUZZTIME) $$pkg; \
		done; \
	done

# fuzz-seeds replays only the checked-in seed corpora (every Fuzz*
# function once per seed, no fuzzing) — the cheap CI smoke of the
# differential targets.
fuzz-seeds:
	$(GO) test -run '^Fuzz' ./...

# cover runs the tier-1 suite once with coverage and prints the
# per-package summary; CI uploads coverage.out as an artifact.
cover:
	$(GO) test -coverprofile coverage.out -covermode atomic ./...
	$(GO) tool cover -func coverage.out | tail -n 25

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-alloc measures allocation discipline on the steady-state hot
# paths with -benchmem: ModExp/ModMul scratch-arena reuse, the pooled
# record layer (Seal/Open must report 0 allocs/op after warmup), the
# serve record op end to end, and the buffer pool itself.  These are the
# numbers the benchcmp allocation gate holds the serving path to.
bench-alloc:
	$(GO) test -bench 'ModExp1024|FixedBase|ModMulMontgomery' -benchmem -run '^$$' ./internal/mpz/
	$(GO) test -bench 'RecordSeal|RecordRoundTrip' -benchmem -run '^$$' ./internal/ssl/
	$(GO) test -bench 'ServeRecordOp|ServeResumedTransaction' -benchmem -run '^$$' ./internal/serve/
	$(GO) test -bench 'WireEncode|WireParse' -benchmem -run '^$$' ./internal/wire/
	$(GO) test -bench 'GetPut' -benchmem -run '^$$' ./internal/bufpool/

# bench-batch is the batched-kernel perf gate: measure the
# BenchmarkBatchModExp1024/k={1,2,4,8} family fresh, gate ns/op and
# allocs/op against the checked-in baseline (>25% fails), and require
# k=4 to beat four scalar k=1 calls per lane by the recorded margin
# (see EXPERIMENTS.md).  Refresh the baseline on a quiet machine with:
#   bin/benchcmp -go-bench-current BENCH_batch.txt -go-bench-out bench/BENCH_batch.baseline.json
bench-batch: bins
	$(GO) test -bench 'BenchmarkBatchModExp1024' -benchmem -benchtime 20x -run '^$$' ./internal/mpz/ | tee BENCH_batch.txt
	bin/benchcmp -go-bench-baseline bench/BENCH_batch.baseline.json -go-bench-current BENCH_batch.txt \
		-assert-lane-speedup 'BatchModExp1024/k=4<BatchModExp1024/k=1' -lane-factor 0.85

bins:
	$(GO) build -o bin/wispd ./cmd/wispd
	$(GO) build -o bin/wispgw ./cmd/wispgw
	$(GO) build -o bin/wispload ./cmd/wispload
	$(GO) build -o bin/benchcmp ./cmd/benchcmp

# serve-smoke boots the offload daemon, serves 100 mixed Figure 8
# transactions at 4 concurrent clients through wispload (verifying every
# payload digest end to end), and drains the daemon cleanly.
serve-smoke: bins
	BIN=bin ./scripts/serve_smoke.sh

# serve-bench replays a heterogeneous ssl+record mix with deadlines and
# client retries against a cost-dispatch wispd (asserting zero payload
# mismatches and zero sheds issued while any shard sat idle), then runs
# the session-resumption A/B: the abbreviated-handshake class's p99 must
# beat the resume-off baseline.  Writes BENCH_serve.json.
serve-bench: bins
	BIN=bin ./scripts/serve_bench.sh

# serve-attack is the adversarial fairness regression gate: an attack-free
# baseline replay (run twice for a noise-resistant reference) followed by
# the same legit workload with all four attack profiles (flood, thrash,
# oversize, slowloris) mixed in.  Asserts zero digest mismatches, zero
# sheds-while-idle, that attackers were throttled, and that legit record
# p99 stays within 1.5x of the attack-free baseline.  Writes
# BENCH_attack.json.
serve-attack: bins
	BIN=bin ./scripts/serve_attack.sh

# serve-cluster is the cluster-scaling gate: the same wire-protocol
# workload against one wispd direct and against wispgw routing over three
# wispd backends.  Asserts resumption-rate parity through consistent-hash
# session affinity (within 5 points of single-node, zero ring redirects),
# >=2x single-node throughput under 20 MHz model pacing, and that killing
# one backend mid-run ejects it with zero client-visible failures.
# Writes BENCH_cluster.json (labeled 'cluster').
serve-cluster: bins
	BIN=bin ./scripts/serve_cluster.sh

# serve-adapt is the adaptive-governor A/B gate: the same shifting
# workload (record warmup, then a sustained rsa-decrypt burst) against a
# mis-sized static batch width and against a governed daemon.  Asserts
# the governor logs a width adaptation, the governed metrics show widen
# ticks and batched RSA serving, zero digest mismatches, and >=15%
# throughput recovery over the static run.  Writes BENCH_adapt.json.
serve-adapt: bins
	BIN=bin ./scripts/serve_adapt.sh

# bench-json emits the machine-readable serving benchmark record
# (per-op p50/p99, throughput, cache hit rates) to BENCH_serve.json.
bench-json: serve-bench

# bench-check gates BENCH_serve.json against the checked-in baseline:
# >25% regression on any tracked metric fails.
bench-check: bench-json
	bin/benchcmp -baseline bench/BENCH_serve.baseline.json -current BENCH_serve.json
