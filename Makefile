GO ?= go

.PHONY: all build test check race fuzz bench serve-smoke serve-bench

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: static analysis plus the full test suite under the
# race detector.  The parallel exploration engine's determinism tests run
# worker pools concurrently here, so data races in the pricing memo, the
# A-D combination memo or the worker pool itself fail the build.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

race: check

# Short bursts of the native fuzz targets (differential vs math/big);
# the checked-in seed corpora under testdata/fuzz always run as part of
# plain `make test`.
fuzz:
	$(GO) test -fuzz FuzzMpnDiv -fuzztime 30s ./internal/mpn/
	$(GO) test -fuzz FuzzModMul -fuzztime 30s ./internal/mpz/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# serve-smoke boots the offload daemon, serves 100 mixed Figure 8
# transactions at 4 concurrent clients through wispload (verifying every
# payload digest end to end), and drains the daemon cleanly.
serve-smoke:
	$(GO) build -o bin/wispd ./cmd/wispd
	$(GO) build -o bin/wispload ./cmd/wispload
	BIN=bin ./scripts/serve_smoke.sh

# serve-bench replays a heterogeneous ssl+record mix with deadlines and
# client retries against a cost-dispatch wispd, asserting zero payload
# mismatches and zero sheds issued while any shard sat idle.
serve-bench:
	$(GO) build -o bin/wispd ./cmd/wispd
	$(GO) build -o bin/wispload ./cmd/wispload
	BIN=bin ./scripts/serve_bench.sh
