// Package wisp is the public API of the WISP security processing platform —
// a from-scratch reproduction of "System Design Methodologies for a
// Wireless Security Processing Platform" (DAC 2002).
//
// A Platform couples the xt32 base core model, the TIE-style custom
// instruction extension selected by the paper's methodology, and the
// layered cryptographic software libraries tuned to it.  It exposes the
// measurements behind the paper's evaluation: Table 1 (per-algorithm
// speedups), Figure 8 (SSL transaction acceleration), Figures 4–6 (call
// graph, A-D curves, design-point reduction) and the §4.3 exploration
// statistics.
package wisp

import (
	"fmt"
	"math/rand"
	"sync"

	"wisp/internal/kernels"
	"wisp/internal/macromodel"
	"wisp/internal/mpz"
	"wisp/internal/rsakey"
	"wisp/internal/sim"
	"wisp/internal/tie"
)

// Options configures platform construction.  The zero value selects the
// defaults used throughout the paper reproduction.
type Options struct {
	SimConfig   *sim.Config // core cost model; nil = sim.DefaultConfig()
	RSABits     int         // RSA modulus size; default 1024
	Seed        int64       // determinism seed; default 1
	CharSizes   []int       // operand sizes (limbs) for kernel characterization
	TIEAddWidth int         // selected vector-adder width; default 8
	TIEMACWidth int         // selected MAC width; default 4
	CharReps    int         // characterization repetitions per size; default 2
}

func (o Options) withDefaults() Options {
	if o.SimConfig == nil {
		cfg := sim.DefaultConfig()
		o.SimConfig = &cfg
	}
	if o.RSABits == 0 {
		o.RSABits = 1024
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.CharSizes) == 0 {
		o.CharSizes = []int{1, 2, 4, 8, 16, 32, 48, 64}
	}
	if o.TIEAddWidth == 0 {
		o.TIEAddWidth = 8
	}
	if o.TIEMACWidth == 0 {
		o.TIEMACWidth = 4
	}
	if o.CharReps == 0 {
		o.CharReps = 2
	}
	return o
}

// Platform is a configured security processor: base core model, selected
// extension, characterized kernel macro-models, and the crypto libraries.
type Platform struct {
	opts Options

	// Ext is the full security extension set mounted on the optimized core.
	Ext *tie.ExtensionSet
	// BaseModels and TIEModels are the ISS-characterized cycle macro-models
	// of the mpn library routines on the base and extended cores.
	BaseModels *macromodel.ModelSet
	TIEModels  *macromodel.ModelSet

	key *rsakey.PrivateKey // lazily generated RSA key

	cpuMu    sync.Mutex // guards cpuCache; cached CPUs themselves are stateful and not shared across goroutines
	cpuCache map[string]*sim.CPU
}

// New builds a platform: it characterizes the multi-precision kernels on
// the ISS for both cores (the one-time step of §3.2) and assembles the
// extension set.
func New(opts Options) (*Platform, error) {
	o := opts.withDefaults()
	base, err := kernels.CharacterizeMPNBase(*o.SimConfig, o.CharSizes, o.CharReps, o.Seed)
	if err != nil {
		return nil, fmt.Errorf("wisp: characterizing base kernels: %w", err)
	}
	tieModels, err := kernels.CharacterizeMPNTIE(*o.SimConfig, o.TIEAddWidth, o.TIEMACWidth,
		o.CharSizes, o.CharReps, o.Seed)
	if err != nil {
		return nil, fmt.Errorf("wisp: characterizing TIE kernels: %w", err)
	}
	return &Platform{
		opts:       o,
		Ext:        kernels.NewSecurityExtension(),
		BaseModels: base,
		TIEModels:  tieModels,
		cpuCache:   make(map[string]*sim.CPU),
	}, nil
}

// SimConfig returns the platform's core cost model.
func (p *Platform) SimConfig() sim.Config { return *p.opts.SimConfig }

// Seed returns the platform's determinism seed.
func (p *Platform) Seed() int64 { return p.opts.Seed }

// RSAKey returns the platform's RSA key, generating it on first use.
func (p *Platform) RSAKey() (*rsakey.PrivateKey, error) {
	if p.key == nil {
		rng := rand.New(rand.NewSource(p.opts.Seed))
		k, err := rsakey.GenerateKey(rng, p.opts.RSABits)
		if err != nil {
			return nil, fmt.Errorf("wisp: generating %d-bit RSA key: %w", p.opts.RSABits, err)
		}
		p.key = k
	}
	return p.key, nil
}

// cpu returns (building and caching) a core loaded with the given kernel
// variant.  The cache lookup is mutex-guarded; the returned CPU is a
// stateful simulator that must not be driven from multiple goroutines —
// parallel measurement paths build private instances instead.
func (p *Platform) cpu(v kernels.Variant) (*sim.CPU, error) {
	p.cpuMu.Lock()
	c, ok := p.cpuCache[v.Name]
	p.cpuMu.Unlock()
	if ok {
		return c, nil
	}
	c, err := v.Build(*p.opts.SimConfig)
	if err != nil {
		return nil, err
	}
	p.cpuMu.Lock()
	p.cpuCache[v.Name] = c
	p.cpuMu.Unlock()
	return c, nil
}

// BaselineExpConfig is the pre-exploration software configuration: school-
// book modular multiplication, binary square-and-multiply, no caching.
var BaselineExpConfig = mpz.ExpConfig{
	Alg:        mpz.ModMulBasecase,
	WindowBits: 1,
	Cache:      mpz.CacheNone,
}

// OptimizedExpConfig is the configuration the exploration phase selects:
// Montgomery multiplication with a 4-bit window and a cached reducer.
var OptimizedExpConfig = mpz.ExpConfig{
	Alg:        mpz.ModMulMontgomery,
	WindowBits: 4,
	Cache:      mpz.CacheReducer,
}

// EstimateRSADecrypt prices one RSA private-key operation (cycles) under
// the given algorithm configuration and kernel models, using the paper's
// trace + macro-model flow.
func (p *Platform) EstimateRSADecrypt(models *macromodel.ModelSet, cfg mpz.ExpConfig, crt rsakey.CRTMode) (float64, error) {
	key, err := p.RSAKey()
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(p.opts.Seed + 100))
	c := mpz.RandBelow(rng, key.N)
	tr := mpz.NewTrace()
	ctx := mpz.NewCtx(tr)
	if _, err := rsakey.DecryptCfg(ctx, key, c, cfg, crt); err != nil {
		return 0, err
	}
	cycles, missing := tr.EstimateCycles(models.Estimators())
	if len(missing) != 0 {
		return 0, fmt.Errorf("wisp: no macro-models for %v", missing)
	}
	return cycles, nil
}

// EstimateRSAEncrypt prices one RSA public-key operation (cycles).
func (p *Platform) EstimateRSAEncrypt(models *macromodel.ModelSet, cfg mpz.ExpConfig) (float64, error) {
	key, err := p.RSAKey()
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(p.opts.Seed + 101))
	m := mpz.RandBelow(rng, key.N)
	tr := mpz.NewTrace()
	ctx := mpz.NewCtx(tr)
	if _, err := rsakey.EncryptCfg(ctx, &key.PublicKey, m, cfg); err != nil {
		return 0, err
	}
	cycles, missing := tr.EstimateCycles(models.Estimators())
	if len(missing) != 0 {
		return 0, fmt.Errorf("wisp: no macro-models for %v", missing)
	}
	return cycles, nil
}
