package wisp

import (
	"fmt"
	"math/rand"
	"sort"

	"wisp/internal/adcurve"
	"wisp/internal/instrsel"
	"wisp/internal/macromodel"
	"wisp/internal/mpz"
	"wisp/internal/rsakey"
	"wisp/internal/tie"
)

// Batch-width exploration.  The lockstep engine (mpz.BatchExp) turns k
// queued private-key ops into fused mpn_addmul_1x<k> kernel calls, which
// a hardware platform serves with a k-lane MAC array: more lanes cost
// multiplier/adder/register area and buy per-op cycles.  That makes the
// batch width a design axis exactly like the paper's vector-adder and
// MAC widths, so it gets the same treatment — price each width with the
// trace + macro-model flow, attach the lane hardware's area, and reduce
// the (area, per-op delay) points to a Pareto frontier for selection.

// BatchDesignPoint is one explored batch width.
type BatchDesignPoint struct {
	Width         int     // lanes fused per engine call
	CyclesPerLane float64 // modeled cycles per decrypt at this width
	TotalCycles   float64 // modeled cycles for one full k-wide batch
	Speedup       float64 // per-lane speedup over the scalar width-1 engine
	AreaGates     float64 // gate area of the k-lane MAC array (0 for width 1)
	OnFrontier    bool    // survives Pareto reduction over (area, delay)
}

// BatchFrontierReport is the outcome of a batch-width exploration.
type BatchFrontierReport struct {
	Points     []BatchDesignPoint   // one per requested width, input order
	Frontier   adcurve.Curve        // Pareto frontier over (area, per-lane cycles)
	Selections []instrsel.Selection // best width per area budget
}

// batchMAC is the k-lane MAC array instruction backing a fused
// mpn_addmul_1x<k> kernel: k multipliers and k carry-resolving adders
// with per-lane 64-bit accumulator state.
func batchMAC(k int) *tie.Instr {
	return &tie.Instr{
		Name:   fmt.Sprintf("bmac%d", k),
		Family: "mpn.batchmac", Kind: "bmac", Rank: k, Latency: 2,
		Res: tie.Resources{Mults: k, Adders: k, RegBits: 64 * k},
	}
}

// BatchFrontier explores batch width as a hardware axis: for every
// width it traces one k-wide CRT decrypt through the lockstep engine,
// prices the trace with the base kernel models plus derived k-lane
// variants (macromodel.BatchModel at DefaultLaneSerialFrac), and
// reduces the resulting (area, per-lane cycles) points to a Pareto
// frontier with per-budget selections.  widths nil defaults to
// {1, 2, 4, 8}; rsaBits 0 uses the platform key size.
func (p *Platform) BatchFrontier(widths []int, rsaBits int) (*BatchFrontierReport, error) {
	if len(widths) == 0 {
		widths = []int{1, 2, 4, 8}
	}
	if rsaBits == 0 {
		rsaBits = p.opts.RSABits
	}
	maxK := 1
	for _, k := range widths {
		if k < 1 {
			return nil, fmt.Errorf("wisp: batch width %d must be ≥ 1", k)
		}
		if k > maxK {
			maxK = k
		}
	}

	rng := rand.New(rand.NewSource(p.opts.Seed + 60))
	key, err := rsakey.GenerateKey(rng, rsaBits)
	if err != nil {
		return nil, fmt.Errorf("wisp: generating %d-bit exploration key: %w", rsaBits, err)
	}

	// Extend the base estimators with derived models for every fused
	// width the traces can record (intermediate widths appear when lanes
	// leave lockstep, so cover 2..maxK, not just the requested widths).
	est := p.BaseModels.Estimators()
	base, ok := p.BaseModels.Get("mpn_addmul_1")
	if !ok {
		return nil, fmt.Errorf("wisp: no base model for mpn_addmul_1")
	}
	for k := 2; k <= maxK; k++ {
		m, err := macromodel.BatchModel(base, k, macromodel.DefaultLaneSerialFrac)
		if err != nil {
			return nil, err
		}
		est[m.Routine] = m.Estimate
	}

	perLane := func(k int) (float64, error) {
		lrng := rand.New(rand.NewSource(p.opts.Seed + 61))
		cs := make([]*mpz.Int, k)
		for i := range cs {
			cs[i] = mpz.RandBelow(lrng, key.N)
		}
		tr := mpz.NewTrace()
		e, err := rsakey.NewEngine(mpz.NewCtx(tr), OptimizedExpConfig, rsakey.CRTGarner, 4, 0)
		if err != nil {
			return 0, err
		}
		if _, err := e.DecryptBatch(key, cs); err != nil {
			return 0, err
		}
		cycles, missing := tr.EstimateCycles(est)
		if len(missing) != 0 {
			return 0, fmt.Errorf("wisp: no macro-models for %v", missing)
		}
		return cycles / float64(k), nil
	}

	scalar, err := perLane(1)
	if err != nil {
		return nil, err
	}
	rep := &BatchFrontierReport{}
	var curve adcurve.Curve
	for _, k := range widths {
		lane := scalar
		if k != 1 {
			if lane, err = perLane(k); err != nil {
				return nil, err
			}
		}
		set := adcurve.NewInstrSet()
		if k > 1 {
			set = adcurve.NewInstrSet(batchMAC(k))
		}
		pt := adcurve.Point{Cycles: lane, Set: set}
		curve = append(curve, pt)
		rep.Points = append(rep.Points, BatchDesignPoint{
			Width:         k,
			CyclesPerLane: lane,
			TotalCycles:   lane * float64(k),
			Speedup:       scalar / lane,
			AreaGates:     pt.Area(),
		})
	}
	rep.Frontier = adcurve.Pareto(curve)
	onFrontier := make(map[string]float64, len(rep.Frontier))
	for _, pt := range rep.Frontier {
		onFrontier[pt.Set.Key()] = pt.Cycles
	}
	budgets := make([]float64, 0, len(rep.Points))
	for i := range rep.Points {
		p := &rep.Points[i]
		if c, ok := onFrontier[curve[i].Set.Key()]; ok && c == p.CyclesPerLane {
			p.OnFrontier = true
		}
		budgets = append(budgets, p.AreaGates)
	}
	sort.Float64s(budgets)
	rep.Selections = instrsel.Sweep(rep.Frontier, budgets)
	return rep, nil
}
