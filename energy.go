package wisp

import (
	"fmt"
	"math/rand"

	"wisp/internal/descipher"
	"wisp/internal/kernels"
	"wisp/internal/sim"
)

// EnergyRow compares the energy of one operation on the base core and the
// extended core — the efficiency dimension the paper claims but defers
// ("large improvements in performance as well as energy efficiency", §1).
type EnergyRow struct {
	Algorithm string
	BasePJ    float64 // picojoules per byte, base core
	OptPJ     float64 // picojoules per byte, extended core
}

// Improvement returns BasePJ / OptPJ.
func (r EnergyRow) Improvement() float64 {
	if r.OptPJ == 0 {
		return 0
	}
	return r.BasePJ / r.OptPJ
}

// MeasureDESEnergy runs one DES block on each core and evaluates the
// energy model over the recorded instruction mix.  The extended core
// spends more energy per custom-instruction cycle (wide datapaths) but
// executes orders of magnitude fewer instructions, so it wins on both
// axes — performance and energy.
func (p *Platform) MeasureDESEnergy() (EnergyRow, error) {
	rng := rand.New(rand.NewSource(p.opts.Seed + 60))
	key := make([]byte, 8)
	blk := make([]byte, 8)
	rng.Read(key)
	rng.Read(blk)
	c, err := descipher.NewCipher(key)
	if err != nil {
		return EnergyRow{}, err
	}
	model := sim.DefaultEnergyModel()

	measure := func(v kernels.Variant, ks []uint32) (float64, error) {
		cpu, err := p.cpu(v)
		if err != nil {
			return 0, err
		}
		cpu.Reset()
		if err := cpu.WriteBytes(t1Src, blk); err != nil {
			return 0, err
		}
		if err := cpu.WriteWords(t1Key, ks); err != nil {
			return 0, err
		}
		if _, _, err := cpu.Call("des_block", t1Dst, t1Src, t1Key); err != nil {
			return 0, err
		}
		return model.Estimate(cpu) / 8, nil // pJ per byte
	}

	basePJ, err := measure(kernels.DESBase(), kernels.PrepDESKeyScheduleBase(c, false))
	if err != nil {
		return EnergyRow{}, err
	}
	optPJ, err := measure(kernels.DESTIE(), kernels.PrepDESKeyScheduleTIE(c, false))
	if err != nil {
		return EnergyRow{}, err
	}
	return EnergyRow{Algorithm: "DES enc./dec.", BasePJ: basePJ, OptPJ: optPJ}, nil
}

// String renders the row.
func (r EnergyRow) String() string {
	return fmt.Sprintf("%s: %.0f pJ/B -> %.0f pJ/B (%.1fX less energy)",
		r.Algorithm, r.BasePJ, r.OptPJ, r.Improvement())
}
