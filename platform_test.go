package wisp

import (
	"strings"
	"testing"

	"wisp/internal/rsakey"
)

// testPlatform is shared across the package tests (512-bit RSA keeps key
// generation and trace runs fast; the benchmarks use the 1024-bit default).
var testPlatform = mustPlatform()

func mustPlatform() *Platform {
	p, err := New(Options{RSABits: 512})
	if err != nil {
		panic(err)
	}
	return p
}

func TestTable1Shapes(t *testing.T) {
	rows, err := testPlatform.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Table 1 has %d rows, want 5", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Algorithm] = r
		if r.Base <= 0 || r.Optimized <= 0 {
			t.Errorf("%s: non-positive measurements %+v", r.Algorithm, r)
		}
	}
	// Paper's Table 1 shape criteria: every algorithm accelerates by
	// an order of magnitude; DES/3DES in the tens; AES more modest;
	// RSA decrypt the largest.
	checks := []struct {
		name   string
		lo, hi float64
	}{
		{"DES enc./dec.", 20, 60},  // paper: 31.0×
		{"3DES enc./dec.", 20, 65}, // paper: 33.9×
		{"AES enc./dec.", 8, 30},   // paper: 17.4×
		{"RSA enc.", 4, 20},        // paper: 10.8×
		{"RSA dec.", 30, 110},      // paper: up to 66.4×
	}
	for _, c := range checks {
		r, ok := byName[c.name]
		if !ok {
			t.Errorf("missing row %q", c.name)
			continue
		}
		if s := r.Speedup(); s < c.lo || s > c.hi {
			t.Errorf("%s speedup %.1f× outside [%v, %v]", c.name, s, c.lo, c.hi)
		}
	}
	// 3DES costs roughly 3× DES on both cores.
	des, des3 := byName["DES enc./dec."], byName["3DES enc./dec."]
	if ratio := des3.Base / des.Base; ratio < 2.5 || ratio > 3.5 {
		t.Errorf("3DES/DES base ratio %.2f, want ≈3", ratio)
	}
	// RSA decrypt dwarfs encrypt (private vs 65537 exponent).
	if byName["RSA dec."].Base < 10*byName["RSA enc."].Base {
		t.Error("RSA decrypt not an order of magnitude above encrypt")
	}
	if out := RenderTable1(rows); !strings.Contains(out, "DES enc./dec.") {
		t.Error("RenderTable1 missing rows")
	}
}

func TestFigure8Shape(t *testing.T) {
	rows, err := testPlatform.Figure8(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Figure 8 has %d sizes, want 6 (1KB..32KB)", len(rows))
	}
	for i, r := range rows {
		if r.Speedup <= 1.5 || r.Speedup > 6 {
			t.Errorf("%dB: speedup %.2f outside (1.5, 6]", r.Bytes, r.Speedup)
		}
		if i > 0 && r.Speedup <= rows[i-1].Speedup {
			t.Errorf("speedup not increasing at %dB", r.Bytes)
		}
	}
	// Composition shift: public-key dominates the 1KB baseline; the
	// symmetric share overtakes it by 32KB.
	pubS, _, _ := rows[0].Base.Fractions()
	pubL, symL, _ := rows[len(rows)-1].Base.Fractions()
	if pubS < 0.4 {
		t.Errorf("1KB public-key share %.2f, want ≥ 0.4", pubS)
	}
	if symL <= pubL {
		t.Errorf("32KB: symmetric %.2f does not overtake public-key %.2f", symL, pubL)
	}
}

func TestFigure5Curves(t *testing.T) {
	f5, err := testPlatform.Figure5(16)
	if err != nil {
		t.Fatal(err)
	}
	// Five points each: base + addv2/4/8/16 (and the {add_k, mul_1} pairs).
	if len(f5.AddN) != 5 {
		t.Errorf("mpn_add_n curve has %d points, want 5", len(f5.AddN))
	}
	if len(f5.AddMul) != 5 {
		t.Errorf("mpn_addmul_1 curve has %d points, want 5", len(f5.AddMul))
	}
	// The base point has zero area and the most cycles.
	base := f5.AddN[0]
	if base.Area() != 0 {
		t.Errorf("first add_n point area %v, want 0 (curve sorted by area)", base.Area())
	}
	for _, p := range f5.AddN[1:] {
		if p.Cycles >= base.Cycles {
			t.Errorf("accelerated point %v not faster than base %v", p, base)
		}
	}
	// Diminishing returns: cycles non-increasing along the area axis.
	for i := 1; i < len(f5.AddN); i++ {
		if f5.AddN[i].Cycles > f5.AddN[i-1].Cycles {
			t.Errorf("add_n curve not monotone at %d", i)
		}
	}
	// Pareto pruning removed at least one inferior combined point.
	if len(f5.Root) >= len(f5.RootAll) {
		t.Errorf("Pareto pruning removed nothing: %d -> %d", len(f5.RootAll), len(f5.Root))
	}
	if len(f5.Root) == 0 {
		t.Fatal("empty root curve")
	}
}

func TestFigure6Reduction(t *testing.T) {
	raw, reduced, err := testPlatform.Figure6(16)
	if err != nil {
		t.Fatal(err)
	}
	if raw != 25 {
		t.Errorf("raw Cartesian product %d, want 25", raw)
	}
	if reduced != 9 {
		t.Errorf("reduced design points %d, want 9 (the paper's Figure 6)", reduced)
	}
}

func TestFigure4CallGraph(t *testing.T) {
	g, err := testPlatform.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	dump := g.Dump()
	for _, want := range []string{"decrypt", "mod_exp", "mod_sqr", "mod_mul", "mpn_addmul_1"} {
		if !strings.Contains(dump, want) {
			t.Errorf("Figure 4 graph missing %q:\n%s", want, dump)
		}
	}
	// CRT decryption performs two exponentiations.
	edges := g.Callees("decrypt")
	var expCount float64
	for _, e := range edges {
		if e.Callee == "mod_exp" {
			expCount = e.Count
		}
	}
	if expCount != 2 {
		t.Errorf("decrypt -> mod_exp count %v, want 2 (CRT)", expCount)
	}
}

func TestSection43(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration study in -short mode")
	}
	rep, err := testPlatform.Section43(256, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates != 450 {
		t.Errorf("candidates %d, want 450", rep.Candidates)
	}
	if rep.Best.EstCycles >= rep.Worst.EstCycles {
		t.Error("best not better than worst")
	}
	// The explored optimum uses CRT and a non-trivial window.
	if rep.Best.CRT == rsakey.CRTNone {
		t.Errorf("best candidate %v does not use CRT", rep.Best.Config)
	}
	if rep.Best.Window < 2 {
		t.Errorf("best candidate %v uses window %d", rep.Best.Config, rep.Best.Window)
	}
	if rep.MeanAbsErrPct > 25 {
		t.Errorf("macro-model error %.1f%% too high", rep.MeanAbsErrPct)
	}
	if rep.SpeedRatio < 10 {
		t.Errorf("macro-model speedup ratio %.0f×, want ≫ 10×", rep.SpeedRatio)
	}
	t.Logf("§4.3: best=%v (%.0f cycles), MAE=%.1f%%, speed ratio=%.0f×",
		rep.Best.Config, rep.Best.EstCycles, rep.MeanAbsErrPct, rep.SpeedRatio)
}

func TestGapReport(t *testing.T) {
	out, err := testPlatform.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"0.35u", "3G", "gap"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 1 report missing %q", want)
		}
	}
	rows := GapRows(200)
	if len(rows) == 0 || rows[len(rows)-1].Gap() <= rows[0].Gap() {
		t.Error("gap model does not widen")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.RSABits != 1024 || o.TIEAddWidth != 8 || o.TIEMACWidth != 4 || o.Seed != 1 {
		t.Errorf("defaults %+v", o)
	}
	if o.SimConfig == nil || o.SimConfig.ClockMHz != 188 {
		t.Error("default sim config wrong")
	}
}

func TestRSAKeyCachedAndValid(t *testing.T) {
	k1, err := testPlatform.RSAKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := testPlatform.RSAKey()
	if k1 != k2 {
		t.Error("RSA key not cached")
	}
	if k1.N.BitLen() != 512 {
		t.Errorf("key size %d", k1.N.BitLen())
	}
}

func TestExtensionSetComplete(t *testing.T) {
	// The mounted security extension covers MPN, DES and AES units.
	for _, name := range []string{"addv8", "subv8", "mulv4", "des_round", "aes_sbox4", "aes_mixcol", "ur_ldn"} {
		if _, ok := testPlatform.Ext.ByName(name); !ok {
			t.Errorf("security extension lacks %q", name)
		}
	}
	if g := testPlatform.Ext.Gates(); g < 1000 {
		t.Errorf("extension area %v implausibly small", g)
	}
}

func TestEnergyImprovement(t *testing.T) {
	row, err := testPlatform.MeasureDESEnergy()
	if err != nil {
		t.Fatal(err)
	}
	if row.BasePJ <= 0 || row.OptPJ <= 0 {
		t.Fatalf("non-positive energy: %+v", row)
	}
	// The extended core must also win on energy (the paper's deferred
	// claim), though by less than the cycle speedup because the custom
	// datapaths burn more per cycle.
	imp := row.Improvement()
	des, err := testPlatform.MeasureDES()
	if err != nil {
		t.Fatal(err)
	}
	if imp <= 1 {
		t.Errorf("no energy improvement: %v", row)
	}
	if imp >= des.Speedup() {
		t.Errorf("energy improvement %.1f not below cycle speedup %.1f", imp, des.Speedup())
	}
	t.Logf("%v (cycle speedup %.1fX)", row, des.Speedup())
}
