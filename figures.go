package wisp

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"wisp/internal/adcurve"
	"wisp/internal/callgraph"
	"wisp/internal/explore"
	"wisp/internal/kernels"
	"wisp/internal/mpz"
	"wisp/internal/pool"
	"wisp/internal/rsakey"
	"wisp/internal/sim"
	"wisp/internal/ssl"
	"wisp/internal/tie"
)

// Figure5Data holds the reproduced A-D curves of the paper's Figure 5:
// the mpn_add_n sweep (a), the mpn_addmul_1 sweep (b), and the composite
// curve of a parent node with both children (c), before and after Pareto
// pruning.
type Figure5Data struct {
	AddN        adcurve.Curve
	AddMul      adcurve.Curve
	RootAll     adcurve.Curve // combined, before Pareto pruning
	Root        adcurve.Curve // after Pareto pruning (points like P1 removed)
	OperandSize int
}

// figure5Instrs picks the design-point instruction subset for a measured
// TIE kernel: the plumbing instructions plus the named compute units.
func figure5Instrs(ext *tie.ExtensionSet, compute ...string) ([]*tie.Instr, error) {
	names := append([]string{"ur_ldn", "ur_stn", "cclr", "cget"}, compute...)
	out := make([]*tie.Instr, 0, len(names))
	for _, n := range names {
		in, ok := ext.ByName(n)
		if !ok {
			return nil, fmt.Errorf("wisp: extension lacks %q", n)
		}
		out = append(out, in)
	}
	return out, nil
}

// measureMPN runs one mpn routine invocation at size n on a fresh seed.
func (p *Platform) measureMPN(cpu *sim.CPU, routine string, n int, seed int64) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	const reps = 3
	var total uint64
	for i := 0; i < reps; i++ {
		c, err := kernels.RunMPNRoutineISS(cpu, rng, routine, n)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return float64(total) / reps, nil
}

// Figure5 measures the A-D curves on the ISS: the base points have zero
// area; each accelerated point couples measured cycles with the hardware
// it instantiates.  n is the operand size in limbs (the paper's plot uses
// a fixed vector length; 8 limbs reproduces its 202-cycle base point).
func (p *Platform) Figure5(n int) (*Figure5Data, error) {
	return p.Figure5Parallel(n, 1)
}

// figure5Task is one independent ISS measurement of the per-routine curve
// formulation: a routine on one core (width 0 = base, else the vector
// width of the TIE datapath).
type figure5Task struct {
	routine string
	width   int
	seed    int64
}

// Figure5Parallel is Figure5 across a bounded worker pool.  Every
// (routine, core) measurement is independent, so they fan out; each task
// builds its own simulator instance (the ISS is stateful, so concurrent
// tasks never share one), and the deterministic simulator makes the
// measured cycles — and therefore the curves — identical to the
// sequential run for any worker count (workers ≤ 0 selects GOMAXPROCS).
func (p *Platform) Figure5Parallel(n, workers int) (*Figure5Data, error) {
	tasks := []figure5Task{
		{"mpn_add_n", 0, p.opts.Seed + 20},
		{"mpn_addmul_1", 0, p.opts.Seed + 21},
	}
	var widths []int
	for _, k := range []int{2, 4, 8, 16} {
		if n%k == 0 {
			widths = append(widths, k)
		}
	}
	// The addmul datapath reuses the vector adder family: its design
	// points pair each adder width with a one-wide multiplier array,
	// exactly the {add_k, mul_1} structure of the paper's Figure 5(b).
	for _, k := range widths {
		tasks = append(tasks, figure5Task{"mpn_add_n", k, p.opts.Seed + 22})
	}
	for _, k := range widths {
		tasks = append(tasks, figure5Task{"mpn_addmul_1", k, p.opts.Seed + 23})
	}

	points := make([]adcurve.Point, len(tasks))
	err := pool.ForEach(len(tasks), workers, func(i int) error {
		t := tasks[i]
		var v kernels.Variant
		if t.width == 0 {
			v = kernels.MPNBase()
		} else {
			var err error
			if v, err = kernels.MPNTIE(t.width, 1, n); err != nil {
				return err
			}
		}
		cpu, err := v.Build(*p.opts.SimConfig)
		if err != nil {
			return err
		}
		cyc, err := p.measureMPN(cpu, t.routine, n, t.seed)
		if err != nil {
			return err
		}
		set := adcurve.NewInstrSet()
		if t.width > 0 {
			compute := []string{fmt.Sprintf("addv%d", t.width)}
			if t.routine == "mpn_addmul_1" {
				compute = append(compute, "mulv1", "cgetm")
			}
			ins, err := figure5Instrs(v.Ext, compute...)
			if err != nil {
				return err
			}
			set = adcurve.NewInstrSet(ins...)
		}
		points[i] = adcurve.Point{Cycles: cyc, Set: set}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var addN, addMul adcurve.Curve
	for i, t := range tasks {
		if t.routine == "mpn_add_n" {
			addN = append(addN, points[i])
		} else {
			addMul = append(addMul, points[i])
		}
	}

	// Figure 5(c): a parent calling mpn_addmul_1 n times and mpn_add_n
	// twice per invocation (one basecase-multiplication row pattern).
	memo := adcurve.NewMemo()
	g := callgraph.New("mod_mul")
	g.SetLocalCycles("mod_mul", 40)
	g.AddCall("mod_mul", "mpn_addmul_1", float64(n))
	g.AddCall("mod_mul", "mpn_add_n", 2)
	g.SetCurve("mpn_add_n", addN)
	g.SetCurve("mpn_addmul_1", addMul)
	root, err := g.RootCurveParallel(workers, memo)
	if err != nil {
		return nil, err
	}
	// The unpruned combination, for the P1-style comparison.
	all := adcurve.CombineMemo(addN.Scale(2), addMul.Scale(float64(n)), memo, workers).Offset(40)

	addN.Sort()
	addMul.Sort()
	return &Figure5Data{AddN: addN, AddMul: addMul, RootAll: all, Root: root, OperandSize: n}, nil
}

// Figure6 quantifies the design-point reduction when combining the two
// Figure 5 curves: the raw Cartesian product size versus the reduced size
// (the paper's 25 → 9).
func (p *Platform) Figure6(n int) (raw, reduced int, err error) {
	f5, err := p.Figure5(n)
	if err != nil {
		return 0, 0, err
	}
	rawCurve := adcurve.CombineRaw(f5.AddN, f5.AddMul)
	redCurve := adcurve.Combine(f5.AddN, f5.AddMul)
	return len(rawCurve), len(redCurve), nil
}

// Figure4 reproduces the annotated call graph of an optimized modular
// exponentiation (RSA decryption with CRT): function-level operation
// counts are collected from an instrumented native run and normalized into
// per-invocation edge weights.
func (p *Platform) Figure4() (*callgraph.Graph, error) {
	key, err := p.RSAKey()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.opts.Seed + 30))
	c := mpz.RandBelow(rng, key.N)
	kernelT := mpz.NewTrace()
	ops := mpz.NewTrace()
	ctx := &mpz.Ctx{T: kernelT, Ops: ops}
	if _, err := rsakey.DecryptCfg(ctx, key, c, OptimizedExpConfig, rsakey.CRTGarner); err != nil {
		return nil, err
	}

	g := callgraph.New("decrypt")
	nExp := float64(ops.Total("mod_exp"))
	if nExp == 0 {
		return nil, fmt.Errorf("wisp: no exponentiations traced")
	}
	g.AddCall("decrypt", "mod_exp", nExp)
	// Top-level arithmetic outside the exponentiations (CRT recombination).
	for name, label := range map[string]string{
		"mpz_mod": "mpz_mod", "mpz_mul": "mpz_mul",
		"mpz_add": "mpz_add", "mpz_gcdext": "mpz_gcdext",
	} {
		if cnt := ops.Total(name); cnt > 0 {
			g.AddCall("decrypt", label, float64(cnt))
		}
	}
	// Exponentiation inner structure.
	sqr := float64(ops.Total("mod_sqr")) / nExp
	mul := float64(ops.Total("mod_mul")) / nExp
	g.AddCall("mod_exp", "mod_sqr", sqr)
	g.AddCall("mod_exp", "mod_mul", mul)
	// Kernel leaves, attributed to the modular operations that drive them.
	totalModOps := float64(ops.Total("mod_sqr") + ops.Total("mod_mul"))
	if totalModOps > 0 {
		for _, rt := range []string{"mpn_addmul_1", "mpn_add_n", "mpn_sub_n", "mpn_submul_1"} {
			if cnt := kernelT.Total(rt); cnt > 0 {
				per := float64(cnt) / totalModOps
				g.AddCall("mod_sqr", rt, per)
				g.AddCall("mod_mul", rt, per)
			}
		}
	}
	return g, nil
}

// SSLCosts derives the Figure 8 cost models from the platform's measured
// Table 1 numbers.  The miscellaneous components (handshake hashing and
// parsing, record MAC and framing) run on the base core in both platforms;
// their constants follow the paper's observation that they bound the
// transaction speedup well below the raw cryptographic speedups.
func (p *Platform) SSLCosts() (base, opt ssl.Costs, err error) {
	des3, err := p.Measure3DES()
	if err != nil {
		return base, opt, err
	}
	rsaDec, err := p.MeasureRSADecrypt()
	if err != nil {
		return base, opt, err
	}
	rsaEnc, err := p.MeasureRSAEncrypt()
	if err != nil {
		return base, opt, err
	}
	md5CPB, err := p.MeasureMD5()
	if err != nil {
		return base, opt, err
	}
	// HMAC-MD5 hashes the payload once through the inner hash (the outer
	// hash is per-record, folded into the framing constant below).
	macPerByte := md5CPB * 1.1
	// Per-byte framing, copying and the per-record fixed costs amortized
	// over typical record sizes; calibrated so that per-byte misc totals
	// ≈310 cycles, the value that reproduces the paper's Figure 8 bounds.
	recordMiscPerByte := 310 - macPerByte
	// Handshake parsing, certificate handling and handshake hashing are
	// comparable to (and calibrated at 0.6×) one private-key operation —
	// the non-accelerated share that bounds small-transaction speedup in
	// Figure 8.
	handshakeMisc := 0.6 * rsaDec.Base
	base = ssl.Costs{
		RSADecrypt:        rsaDec.Base,
		RSAPublic:         rsaEnc.Base,
		HandshakeMisc:     handshakeMisc,
		CipherPerByte:     des3.Base,
		MACPerByte:        macPerByte,
		RecordMiscPerByte: recordMiscPerByte,
	}
	opt = base
	opt.RSADecrypt = rsaDec.Optimized
	opt.RSAPublic = rsaEnc.Optimized
	opt.CipherPerByte = des3.Optimized
	return base, opt, nil
}

// Figure8 evaluates the SSL transaction speedup series on the platform's
// measured costs.
func (p *Platform) Figure8(sizes []int) ([]ssl.Row, error) {
	base, opt, err := p.SSLCosts()
	if err != nil {
		return nil, err
	}
	if len(sizes) == 0 {
		sizes = ssl.DefaultSizes
	}
	return ssl.Figure8(base, opt, sizes)
}

// ProtocolComparison evaluates the platform speedup for each supported
// security protocol (SSL, WTLS, IPsec-ESP) at one transaction size —
// the protocol-stack breadth claimed in the paper's §1 ("WEP, IPSec, and
// SSL" and WTLS inter-working).
func (p *Platform) ProtocolComparison(bytes int) (map[string]float64, error) {
	base, opt, err := p.SSLCosts()
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, 3)
	for _, proto := range []ssl.Protocol{ssl.ProtoSSL, ssl.ProtoWTLS, ssl.ProtoIPSecESP} {
		rows, err := ssl.ProtocolSeries(proto, base, opt, []int{bytes}, ssl.DefaultProtocolParams)
		if err != nil {
			return nil, err
		}
		out[proto.String()] = rows[0].Speedup
	}
	return out, nil
}

// ExplorationReport summarizes a §4.3 run: full-space macro-model
// exploration plus sampled ISS ground-truth replays.
type ExplorationReport struct {
	Candidates    int
	Best          explore.Result
	Worst         explore.Result
	Results       []explore.Result // full ranked space, best-first
	EstimateTime  time.Duration    // macro-model pass over the whole space
	Workers       int              // worker-pool size of the estimate pass
	PriceCache    explore.CacheStats
	ReplayCount   int
	ReplayTime    time.Duration // ISS replays of ReplayCount candidates
	MeanAbsErrPct float64       // macro-model vs ISS replay
	// SpeedRatio extrapolates: (per-candidate replay time) /
	// (per-candidate estimate time), the paper's ≈1407×.
	SpeedRatio float64
}

// Section43 runs the exploration study on an RSA key of the given size
// (the paper's full study uses 1024 bits; smaller keys exercise the same
// space faster).  replayCount candidates are re-measured on the ISS with
// sampleCap invocations per trace bucket.
func (p *Platform) Section43(rsaBits, replayCount, sampleCap int) (*ExplorationReport, error) {
	return p.Section43Parallel(rsaBits, replayCount, sampleCap, 1, nil)
}

// Section43Parallel is Section43 with the candidate-evaluation pass fanned
// out across a bounded worker pool (workers ≤ 0 selects GOMAXPROCS).  The
// ranked results are identical to the sequential study for any worker
// count.  progress, when non-nil, observes candidate completion from the
// worker goroutines.
func (p *Platform) Section43Parallel(rsaBits, replayCount, sampleCap, workers int, progress explore.ProgressFunc) (*ExplorationReport, error) {
	rng := rand.New(rand.NewSource(p.opts.Seed + 40))
	key, err := rsakey.GenerateKey(rng, rsaBits)
	if err != nil {
		return nil, err
	}
	ex := explore.New(p.BaseModels, key, p.opts.Seed+41)

	space := explore.Space()
	start := time.Now()
	results, err := ex.EvaluateAllParallel(space, workers, progress)
	if err != nil {
		return nil, err
	}
	estTime := time.Since(start)

	rep := &ExplorationReport{
		Candidates:   len(results),
		Best:         results[0],
		Worst:        results[len(results)-1],
		Results:      results,
		EstimateTime: estTime,
		Workers:      pool.Workers(workers, len(space)),
		PriceCache:   ex.CacheStats(),
	}

	// Replay a spread of radix-32 candidates on the ISS.
	var replayable []explore.Result
	for _, r := range results {
		if r.Radix == 32 {
			replayable = append(replayable, r)
		}
	}
	if replayCount > len(replayable) {
		replayCount = len(replayable)
	}
	var errSum float64
	var replayTime, projected time.Duration
	for i := 0; i < replayCount; i++ {
		// Spread across the quality range.
		r := replayable[i*(len(replayable)-1)/max(1, replayCount-1)]
		res, err := ex.ReplayISS(r.Config, *p.opts.SimConfig, sampleCap, p.opts.Seed+int64(50+i))
		if err != nil {
			return nil, err
		}
		replayTime += res.Elapsed
		projected += res.ProjectedFull
		errSum += math.Abs(r.EstCycles-res.Cycles) / res.Cycles
	}
	rep.ReplayCount = replayCount
	rep.ReplayTime = replayTime
	if replayCount > 0 {
		rep.MeanAbsErrPct = 100 * errSum / float64(replayCount)
		// The paper's ratio compares a full ISS evaluation per candidate
		// against the macro-model estimate; our replays sample buckets,
		// so project the sampled rate to the full invocation count.
		perReplay := projected.Seconds() / float64(replayCount)
		perEst := estTime.Seconds() / float64(len(results))
		if perEst > 0 {
			rep.SpeedRatio = perReplay / perEst
		}
	}
	return rep, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Figure1 re-exports the security-processing-gap model sized to this
// platform's measured 3DES software cost.
func (p *Platform) Figure1() (string, error) {
	des3, err := p.Measure3DES()
	if err != nil {
		return "", err
	}
	return renderGap(des3.Base / 8), nil
}
