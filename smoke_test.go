package wisp_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestSmokeCommands builds every cmd/ main and runs it with -h: the flag
// package prints usage and exits 0, proving each binary links, parses its
// flag set and reaches main without side effects.
func TestSmokeCommands(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := []string{"wispd", "wispexplore", "wispgap", "wispload", "wispselect", "wispsim", "wispssl"}
	dir := t.TempDir()
	for _, name := range bins {
		out := filepath.Join(dir, name)
		build := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		build.Env = os.Environ()
		if msg, err := build.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		run := exec.Command(out, "-h")
		if msg, err := run.CombinedOutput(); err != nil {
			t.Errorf("%s -h: %v\n%s", name, err, msg)
		}
	}
}

// TestSmokeQuickstartExample runs the fastest example end to end (the
// examples take no flags, so -h would not short-circuit them; quickstart
// completes in well under a second).
func TestSmokeQuickstartExample(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an example binary")
	}
	cmd := exec.Command("go", "run", "./examples/quickstart")
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("quickstart: %v\n%s", err, out)
	}
	if len(out) == 0 {
		t.Error("quickstart produced no output")
	}
}

// TestSmokeExamplesBuild compiles the remaining examples without running
// them (some simulate full workloads and take seconds to minutes).
func TestSmokeExamplesBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("builds example binaries")
	}
	examples := []string{
		"algorithm-exploration", "custom-instructions", "ssl-transaction", "video-decrypt",
	}
	dir := t.TempDir()
	for _, name := range examples {
		build := exec.Command("go", "build", "-o", filepath.Join(dir, name), "./examples/"+name)
		build.Env = os.Environ()
		if msg, err := build.CombinedOutput(); err != nil {
			t.Errorf("build examples/%s: %v\n%s", name, err, msg)
		}
	}
}
